"""The hot-path microbenchmarks and the suite assembler.

Each ``bench_*`` function returns a :class:`~repro.perf.microbench.BenchReport`
whose ``config`` is a pure function of ``(seed, smoke)`` — the determinism
test holds configs and metric *keys* identical across same-seed runs,
while the timing *values* are free to vary.

``run_suite`` stitches the reports into the ``BENCH_perf.json`` payload:
seed- and git-stamped, carrying the committed pre-optimisation baseline
block so the headline speedups stay attributable to a concrete revision.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.perf.microbench import BenchReport, time_call

SCHEMA_VERSION = 1

#: Hot-path numbers measured at the pre-optimisation revision (full
#: budgets, seed 7, development machine).  The end-to-end entry is the
#: suite's own rwow-rde/canneal/3000-request run.  These are the
#: denominators of the ``*_vs_pre_pr`` speedups; they are machine-bound,
#: so cross-machine comparisons should use the ``*_vs_reference`` ratios
#: instead.
PRE_PR_BASELINE: Dict[str, object] = {
    "code_version": "46cee17",
    "note": (
        "Measured at the pre-optimization commit with full (non-smoke) "
        "budgets, seed 7, on the development machine."
    ),
    "metrics": {
        "codec.encode_us": 4.143,
        "codec.decode_us": 14.510,
        "storage.cold_line_us": 41.889,
        "engine.dispatch_us": 2.664,
        "end_to_end.wall_seconds": 0.901,
        "end_to_end.events_per_second": 6920.0,
    },
}

#: The suite's own numbers as committed at the end of the previous PR
#: (the scalar-scheduler revision the vectorized codec/storage PR starts
#: from).  Denominators of the ``*_vs_pr6`` speedups.  Single-shot wall
#: ratios on a shared box carry ±20% noise; interleaved same-box A/B
#: pairs against this revision measured a ~1.7x median end-to-end
#: speedup (10 pairs, per-pair ratios 1.5-1.9).
PR6_BASELINE: Dict[str, object] = {
    "code_version": "a696ba5",
    "note": (
        "Suite results committed at the previous PR head (full budgets, "
        "seed 7, development machine)."
    ),
    "metrics": {
        "codec.encode_us": 0.529,
        "codec.decode_us": 1.531,
        "storage.cold_line_us": 11.350,
        "storage.write_line_us": 3.823,
        "storage.diff_mask_us": 0.919,
        "engine.dispatch_us": 1.270,
        "end_to_end.wall_seconds": 0.29692,
        "end_to_end.events_per_second": 20712.5,
    },
}


def _repeats(smoke: bool) -> int:
    return 2 if smoke else 5


# ----------------------------------------------------------------------
# Codec: table-driven Hamming(72,64) vs the bit-loop reference
# ----------------------------------------------------------------------
def bench_codec(seed: int, smoke: bool = False) -> BenchReport:
    """Per-word encode/decode cost, fast path and reference side by side.

    The reference timings make the headline codec speedup machine
    independent: both implementations run in the same process on the same
    random words.
    """
    from repro.ecc.hamming import (
        _decode_reference,
        _encode_reference,
        decode,
        encode,
    )

    n_words = 400 if smoke else 2000
    rng = random.Random(seed * 9176 + 11)
    words = [rng.getrandbits(64) for _ in range(n_words)]
    pairs = [(w, encode(w)) for w in words]
    repeats = _repeats(smoke)

    def run_encode() -> None:
        for w in words:
            encode(w)

    def run_encode_reference() -> None:
        for w in words:
            _encode_reference(w)

    def run_decode() -> None:
        for w, c in pairs:
            decode(w, c)

    def run_decode_reference() -> None:
        for w, c in pairs:
            _decode_reference(w, c)

    scale = 1e6 / n_words  # seconds/batch -> microseconds/word
    encode_us = time_call(run_encode, repeats) * scale
    encode_ref_us = time_call(run_encode_reference, repeats) * scale
    decode_us = time_call(run_decode, repeats) * scale
    decode_ref_us = time_call(run_decode_reference, repeats) * scale
    return BenchReport(
        name="codec",
        config={"words": n_words, "seed": seed, "repeats": repeats},
        metrics={
            "encode_us": encode_us,
            "encode_reference_us": encode_ref_us,
            "decode_us": decode_us,
            "decode_reference_us": decode_ref_us,
            "encode_vs_reference": encode_ref_us / encode_us,
            "decode_vs_reference": decode_ref_us / decode_us,
        },
    )


# ----------------------------------------------------------------------
# Batch codec: repro.ecc.batch arrays vs the scalar word loop
# ----------------------------------------------------------------------
def bench_batch_codec(seed: int, smoke: bool = False) -> BenchReport:
    """Vectorized SECDED throughput against the scalar per-word loop.

    Both paths run in the same process on the same words, so the
    ``*_vs_scalar`` ratios are machine independent — they are the
    numbers the >=5x codec gate in :func:`check_payload` holds.  On a
    scalar-only build (no numpy, or ``REPRO_NO_NUMPY``) the report
    carries the scalar timings alone and the gate does not apply.
    """
    from repro.ecc import batch, hamming

    n_words = 2_000 if smoke else 20_000
    rng = random.Random(seed * 4243 + 17)
    words = [rng.getrandbits(64) for _ in range(n_words)]
    checks = [hamming.encode(w) for w in words]
    repeats = _repeats(smoke)
    scale = 1e6 / n_words

    def run_scalar_encode() -> None:
        for w in words:
            hamming.encode(w)

    def run_scalar_decode() -> None:
        for w, c in zip(words, checks):
            hamming.decode(w, c)

    metrics: Dict[str, float] = {
        "scalar_encode_us": time_call(run_scalar_encode, repeats) * scale,
        "scalar_decode_us": time_call(run_scalar_decode, repeats) * scale,
    }
    if batch.HAS_NUMPY:
        np = batch.np
        arr = np.array(words, dtype=np.uint64)
        checks_arr = np.array(checks, dtype=np.uint8)

        def run_batch_encode() -> None:
            batch.encode_words(arr)

        def run_batch_decode() -> None:
            batch.decode_words(arr, checks_arr)

        metrics["batch_encode_us"] = (
            time_call(run_batch_encode, repeats) * scale
        )
        metrics["batch_decode_us"] = (
            time_call(run_batch_decode, repeats) * scale
        )
        metrics["encode_vs_scalar"] = (
            metrics["scalar_encode_us"] / metrics["batch_encode_us"]
        )
        metrics["decode_vs_scalar"] = (
            metrics["scalar_decode_us"] / metrics["batch_decode_us"]
        )
    return BenchReport(
        name="batch_codec",
        config={
            "words": n_words,
            "seed": seed,
            "repeats": repeats,
            "numpy": batch.HAS_NUMPY,
        },
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# Front-end tier: array-backed batched epochs vs the object access loop
# ----------------------------------------------------------------------
def bench_frontend_access(seed: int, smoke: bool = False) -> BenchReport:
    """Warm-tier access cost at paper scale, object loop vs array epochs.

    Builds the set-associative tier twice — once on the historical
    dict-of-CacheLine backend, once on the columnar array backend —
    warms both with the same working set, then streams identical
    hit-heavy accesses through each: per-access :meth:`access` calls on
    the object backend, :data:`~repro.cpu.multicore.ON_EPOCH_BATCH`-
    sized :meth:`access_batch` epochs on the array backend (the same
    windowing the simulator's on_epoch hook sees).  The equivalence
    suite holds the two backends bit-identical, so ``batch_vs_object``
    is a pure mechanism ratio, machine independent, and gated (>=5x) in
    :func:`check_payload` on numpy builds.  Full budgets use the
    paper's 256 MB Table I geometry; smoke shrinks the tier to 16 MB to
    keep allocation light.
    """
    from repro.cache.set_assoc import make_set_cache
    from repro.cpu.multicore import ON_EPOCH_BATCH
    from repro.ecc.batch import HAS_NUMPY

    capacity_mb = 16 if smoke else 256
    size_bytes = capacity_mb * 1024 * 1024
    ways = 8
    epoch = ON_EPOCH_BATCH
    n_lines = 2_048 if smoke else 8_192
    n_accesses = 8_192 if smoke else 32_768
    repeats = _repeats(smoke)

    n_sets = size_bytes // (64 * ways)
    rng = random.Random(seed * 6121 + 29)
    # All ways of each sampled set resident: the warm stream stays
    # eviction free (every timed access is a hit, repeats do identical
    # work) while tag scans see realistic full-set depth.
    lines = [
        (tag * n_sets + set_index) * 64
        for set_index in rng.sample(range(n_sets), n_lines // ways)
        for tag in range(ways)
    ]
    addresses = rng.choices(lines, k=n_accesses)
    writes = [rng.random() < 0.3 for _ in range(n_accesses)]
    pairs = list(zip(addresses, writes))
    chunks = [
        (addresses[i:i + epoch], writes[i:i + epoch])
        for i in range(0, n_accesses, epoch)
    ]

    obj = make_set_cache(size_bytes, ways, name="fe-object", backend="object")
    arr = make_set_cache(size_bytes, ways, name="fe-array", backend="array")
    obj_warm = [obj.access(address, False)[0] for address in lines]
    arr_warm, _ = arr.access_batch(lines, [False] * n_lines)
    # Untimed verification pass: the stream must be all-hits and the
    # backends must agree, or the timing compares different work.
    for address, is_write in pairs:
        obj.access(address, is_write)
    for chunk_addresses, chunk_writes in chunks:
        arr.access_batch(chunk_addresses, chunk_writes)
    if any(obj_warm) or any(arr_warm) or not (
        obj.stats.hits == arr.stats.hits == n_accesses
        and obj.stats.misses == arr.stats.misses == n_lines
    ):
        raise RuntimeError(
            "frontend_access backends diverged: "
            f"object {obj.stats.hits}/{obj.stats.misses} vs "
            f"array {arr.stats.hits}/{arr.stats.misses} hits/misses"
        )

    def run_object() -> None:
        access = obj.access
        for address, is_write in pairs:
            access(address, is_write)

    scale = 1e6 / n_accesses
    metrics: Dict[str, float] = {
        "object_access_us": time_call(run_object, repeats) * scale,
    }
    if HAS_NUMPY:

        def run_batch() -> None:
            access_batch = arr.access_batch
            for chunk_addresses, chunk_writes in chunks:
                access_batch(chunk_addresses, chunk_writes)

        metrics["batch_access_us"] = time_call(run_batch, repeats) * scale
        metrics["batch_vs_object"] = (
            metrics["object_access_us"] / metrics["batch_access_us"]
        )
    return BenchReport(
        name="frontend_access",
        config={
            "capacity_mb": capacity_mb,
            "associativity": ways,
            "epoch": epoch,
            "working_set_lines": n_lines,
            "accesses": n_accesses,
            "seed": seed,
            "repeats": repeats,
            "numpy": HAS_NUMPY,
        },
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# Storage: cold-line materialisation, differential writes, diff masks
# ----------------------------------------------------------------------
def bench_storage(seed: int, smoke: bool = False) -> BenchReport:
    """Backing-store hot paths on a batch of random lines.

    The cold-line run clears the process-wide templates first, so it
    measures true first-touch cost (pattern + line encode + parity), not
    memo hits.
    """
    from repro.memory import storage as storage_mod
    from repro.memory.request import WORDS_PER_LINE
    from repro.memory.storage import MemoryStorage

    n_lines = 128 if smoke else 512
    rng = random.Random(seed * 7351 + 5)
    addresses = rng.sample(range(1 << 20), n_lines)
    masks = [rng.randrange(1, 1 << WORDS_PER_LINE) for _ in addresses]
    new_lines = [
        tuple(rng.getrandbits(64) for _ in range(WORDS_PER_LINE))
        for _ in addresses
    ]
    repeats = _repeats(smoke)

    def run_cold() -> None:
        storage_mod._cold_pattern.cache_clear()
        storage_mod._cold_line.cache_clear()
        store = MemoryStorage(keep_pcc=True)
        for address in addresses:
            store.read_line(address)

    def run_prefetch() -> None:
        # Same first-touch work as run_cold, via the batch entry point
        # (vector path when numpy is present, scalar loop otherwise).
        storage_mod._cold_pattern.cache_clear()
        storage_mod._cold_line.cache_clear()
        store = MemoryStorage(keep_pcc=True)
        store.prefetch(addresses)

    warm = MemoryStorage(keep_pcc=True)
    for address in addresses:
        warm.read_line(address)

    def run_write() -> None:
        for address, words, mask in zip(addresses, new_lines, masks):
            warm.write_line(address, words, mask)

    def run_diff() -> None:
        for address, words in zip(addresses, new_lines):
            warm.diff_mask(address, words)

    scale = 1e6 / n_lines
    return BenchReport(
        name="storage",
        config={"lines": n_lines, "seed": seed, "repeats": repeats},
        metrics={
            "cold_line_us": time_call(run_cold, repeats) * scale,
            "prefetch_us": time_call(run_prefetch, repeats) * scale,
            "write_line_us": time_call(run_write, repeats) * scale,
            "diff_mask_us": time_call(run_diff, repeats) * scale,
        },
    )


# ----------------------------------------------------------------------
# Trace generation: the synthetic per-core record stream
# ----------------------------------------------------------------------
def bench_trace_gen(seed: int, smoke: bool = False) -> BenchReport:
    """Throughput of the epoch-batched synthetic trace generator.

    Builds a fresh generator per repeat (cold streams, cold rng) and
    drains a fixed record count through :meth:`take` — the same path the
    simulator's cores consume.
    """
    from repro.trace.synthetic import SyntheticTraceGenerator
    from repro.trace.workloads import get_workload

    n_records = 5_000 if smoke else 20_000
    repeats = _repeats(smoke)
    profile = get_workload("canneal")

    def run_take() -> None:
        generator = SyntheticTraceGenerator(
            profile, seed=seed, core_id=0, n_cores=8
        )
        generator.take(n_records)

    record_us = time_call(run_take, repeats) * 1e6 / n_records
    return BenchReport(
        name="trace_gen",
        config={
            "workload": "canneal",
            "records": n_records,
            "seed": seed,
            "repeats": repeats,
        },
        metrics={
            "record_us": record_us,
            "records_per_second": 1e6 / record_us,
        },
    )


# ----------------------------------------------------------------------
# Engine: event dispatch throughput, fast path and handle path
# ----------------------------------------------------------------------
def bench_engine_dispatch(seed: int, smoke: bool = False) -> BenchReport:
    """Cost of scheduling + dispatching one event through the heap loop.

    ``dispatch_us`` uses :meth:`Engine.call_at` (the allocation-free path
    completions ride); ``dispatch_handle_us`` uses
    :meth:`Engine.schedule_at` (cancellable, allocates an EventHandle).
    """
    from repro.sim.engine import Engine

    n_events = 5_000 if smoke else 20_000
    repeats = _repeats(smoke)
    sink: List[int] = []

    def consume(value: int) -> None:
        sink.append(value)

    def run_call_at() -> None:
        sink.clear()
        engine = Engine()
        for i in range(n_events):
            engine.call_at(i, consume, i)
        engine.run()

    def run_schedule_at() -> None:
        sink.clear()
        engine = Engine()
        noop = sink.clear
        for i in range(n_events):
            engine.schedule_at(i, noop)
        engine.run()

    scale = 1e6 / n_events
    return BenchReport(
        name="engine",
        config={"events": n_events, "seed": seed, "repeats": repeats},
        metrics={
            "dispatch_us": time_call(run_call_at, repeats) * scale,
            "dispatch_handle_us": time_call(run_schedule_at, repeats) * scale,
        },
    )


# ----------------------------------------------------------------------
# End to end: one full rwow-rde functional run
# ----------------------------------------------------------------------
def bench_end_to_end(seed: int, smoke: bool = False) -> BenchReport:
    """One complete rwow-rde/canneal simulation, wall-clocked.

    Single run (no best-of): the simulation itself dominates and the
    events-per-second figure is the tracked number.  ``sim_ticks`` and
    ``events_dispatched`` double as behavioural fingerprints — they are
    deterministic for a given (seed, budget) and must not move under
    purely mechanical optimisation.
    """
    import time

    from repro.core.systems import make_rwow_rde
    from repro.sim.simulator import SimulationParams, simulate

    target_requests = 600 if smoke else 3000
    params = SimulationParams(target_requests=target_requests, seed=seed)
    t0 = time.perf_counter()
    result = simulate(make_rwow_rde(), "canneal", params)
    wall = time.perf_counter() - t0
    events = result.profile.events_dispatched if result.profile else 0
    return BenchReport(
        name="end_to_end",
        config={
            "system": "rwow-rde",
            "workload": "canneal",
            "target_requests": target_requests,
            "n_cores": params.n_cores,
            "seed": seed,
        },
        metrics={
            "wall_seconds": wall,
            "events_dispatched": float(events),
            "events_per_second": events / wall if wall > 0 else 0.0,
            "sim_ticks": float(result.sim_ticks),
        },
    )


# ----------------------------------------------------------------------
# Time-series sampling overhead: the same run, telemetry off vs on
# ----------------------------------------------------------------------
def bench_timeseries(seed: int, smoke: bool = False) -> BenchReport:
    """Cost of enabling the time-series sampler at its default cadence.

    Runs the end-to-end configuration twice — once plain, once with
    ``sample_every_ticks`` + ``collect_metrics`` — and reports the wall
    ratio.  ``samples`` is the deterministic sample count, so the
    determinism test pins the sampler's cadence behaviour for free.  The
    ``overhead_ratio`` ceiling is gated in :func:`check_payload` at full
    budgets only; smoke runs are too short for a stable ratio.
    """
    from repro.core.systems import make_rwow_rde
    from repro.sim.simulator import SimulationParams, simulate
    from repro.telemetry.timeseries import DEFAULT_CADENCE_TICKS

    target_requests = 600 if smoke else 3000
    repeats = 2 if smoke else 3
    plain = SimulationParams(target_requests=target_requests, seed=seed)
    observed = SimulationParams(
        target_requests=target_requests,
        seed=seed,
        sample_every_ticks=DEFAULT_CADENCE_TICKS,
        collect_metrics=True,
    )
    samples: Dict[str, int] = {}

    def run_off() -> None:
        simulate(make_rwow_rde(), "canneal", plain)

    def run_on() -> None:
        result = simulate(make_rwow_rde(), "canneal", observed)
        samples["taken"] = result.timeseries["total_samples"]

    wall_off = time_call(run_off, repeats)
    wall_on = time_call(run_on, repeats)
    return BenchReport(
        name="timeseries",
        config={
            "system": "rwow-rde",
            "workload": "canneal",
            "target_requests": target_requests,
            "cadence_ticks": DEFAULT_CADENCE_TICKS,
            "seed": seed,
            "repeats": repeats,
        },
        metrics={
            "wall_off_seconds": wall_off,
            "wall_on_seconds": wall_on,
            "overhead_ratio": wall_on / wall_off,
            "samples": float(samples["taken"]),
        },
    )


#: Ceiling for the sampling overhead ratio at full budgets.  The issue
#: budget is 5%; the gate sits higher so timer noise on a loaded CI box
#: cannot flake it, while a hot-path mistake (sampling per event instead
#: of per boundary) still trips it instantly.
TIMESERIES_OVERHEAD_CEILING = 1.15


# ----------------------------------------------------------------------
# Suite assembly
# ----------------------------------------------------------------------
def run_suite(seed: int = 7, smoke: bool = False) -> dict:
    """Run all eight benchmarks; returns the ``BENCH_perf.json`` payload."""
    from repro.analysis.regress import (
        collect_fingerprint,
        collect_frontend_fingerprint,
    )
    from repro.sim.results_io import code_version

    reports = [
        bench_codec(seed, smoke),
        bench_batch_codec(seed, smoke),
        bench_frontend_access(seed, smoke),
        bench_storage(seed, smoke),
        bench_engine_dispatch(seed, smoke),
        bench_trace_gen(seed, smoke),
        bench_end_to_end(seed, smoke),
        bench_timeseries(seed, smoke),
    ]
    # Deterministic (non-timing) metrics of the reference run — the
    # regression sentinel's pinned baseline, direct-path and front-end
    # (dram tier) legs.  Smoke suites pin only the smoke budgets; the
    # committed full run pins all four so CI can diff cheaply against
    # any of them.
    fingerprints = {
        "smoke": collect_fingerprint(smoke=True, seed=seed),
        "frontend_smoke": collect_frontend_fingerprint(
            smoke=True, seed=seed
        ),
    }
    if not smoke:
        fingerprints["full"] = collect_fingerprint(smoke=False, seed=seed)
        fingerprints["frontend_full"] = collect_frontend_fingerprint(
            smoke=False, seed=seed
        )
    by_name = {report.name: report for report in reports}
    speedups: Dict[str, float] = {
        "codec.encode_vs_reference":
            by_name["codec"].metrics["encode_vs_reference"],
        "codec.decode_vs_reference":
            by_name["codec"].metrics["decode_vs_reference"],
    }
    batch_metrics = by_name["batch_codec"].metrics
    if "encode_vs_scalar" in batch_metrics:
        speedups["batch_codec.encode_vs_scalar"] = (
            batch_metrics["encode_vs_scalar"]
        )
        speedups["batch_codec.decode_vs_scalar"] = (
            batch_metrics["decode_vs_scalar"]
        )
    frontend_metrics = by_name["frontend_access"].metrics
    if "batch_vs_object" in frontend_metrics:
        speedups["frontend_access.batch_vs_object"] = (
            frontend_metrics["batch_vs_object"]
        )
    if not smoke:
        # Machine-bound ratios against the committed pre-optimisation
        # numbers; only meaningful at full budgets (the baseline was
        # measured with them).
        baseline = PRE_PR_BASELINE["metrics"]
        speedups["codec.encode_vs_pre_pr"] = (
            baseline["codec.encode_us"] / by_name["codec"].metrics["encode_us"]
        )
        speedups["codec.decode_vs_pre_pr"] = (
            baseline["codec.decode_us"] / by_name["codec"].metrics["decode_us"]
        )
        speedups["storage.cold_line_vs_pre_pr"] = (
            baseline["storage.cold_line_us"]
            / by_name["storage"].metrics["cold_line_us"]
        )
        speedups["engine.dispatch_vs_pre_pr"] = (
            baseline["engine.dispatch_us"]
            / by_name["engine"].metrics["dispatch_us"]
        )
        speedups["end_to_end.vs_pre_pr"] = (
            baseline["end_to_end.wall_seconds"]
            / by_name["end_to_end"].metrics["wall_seconds"]
        )
        pr6 = PR6_BASELINE["metrics"]
        speedups["storage.cold_line_vs_pr6"] = (
            pr6["storage.cold_line_us"]
            / by_name["storage"].metrics["cold_line_us"]
        )
        speedups["storage.write_line_vs_pr6"] = (
            pr6["storage.write_line_us"]
            / by_name["storage"].metrics["write_line_us"]
        )
        speedups["engine.dispatch_vs_pr6"] = (
            pr6["engine.dispatch_us"]
            / by_name["engine"].metrics["dispatch_us"]
        )
        speedups["end_to_end.vs_pr6"] = (
            pr6["end_to_end.wall_seconds"]
            / by_name["end_to_end"].metrics["wall_seconds"]
        )
    return {
        "schema": SCHEMA_VERSION,
        "suite": "perf",
        "seed": seed,
        "smoke": smoke,
        "code_version": code_version(),
        "baseline": PRE_PR_BASELINE,
        "baseline_pr6": PR6_BASELINE,
        "benchmarks": [report.to_dict() for report in reports],
        "speedups": {k: speedups[k] for k in sorted(speedups)},
        "metrics_fingerprint": fingerprints,
    }


def check_payload(payload: dict) -> List[str]:
    """Gross-regression gate for CI; returns failure messages (empty = ok).

    Only machine-independent ratios are gated: both codec implementations
    run in the same process on the same words, so their ratio is stable
    across machines.  Typical values are ~2.5x (encode — the reference's
    eight ``bit_count`` parities are themselves cheap) and ~6-8x (decode);
    the floors sit far below those, so tripping one means the fast path
    grossly regressed or the suite timed the wrong function.  The
    machine-bound ``*_vs_pre_pr`` numbers are recorded but never gated.
    """
    failures: List[str] = []
    speedups = payload.get("speedups", {})
    floors = {
        "codec.encode_vs_reference": 1.2,
        "codec.decode_vs_reference": 2.0,
    }
    for key, floor in floors.items():
        ratio = speedups.get(key)
        if ratio is None:
            failures.append(f"missing speedup metric {key!r}")
        elif ratio < floor:
            failures.append(
                f"{key} = {ratio:.2f}x, below the {floor}x "
                "gross-regression floor"
            )
    for report in payload.get("benchmarks", []):
        for metric, value in report.get("metrics", {}).items():
            if not value > 0:
                failures.append(
                    f"benchmark {report['name']!r} metric {metric!r} "
                    f"is non-positive ({value})"
                )
        if report.get("name") == "batch_codec" and report.get(
            "config", {}
        ).get("numpy"):
            # The vectorized codec's headline contract: >=5x over the
            # scalar loop whenever numpy is present.  Same-process
            # ratios, so the gate is machine independent; measured
            # values sit at ~20-40x, far above the floor.
            for key in ("encode_vs_scalar", "decode_vs_scalar"):
                ratio = report.get("metrics", {}).get(key)
                if ratio is None:
                    failures.append(
                        f"batch_codec missing metric {key!r} on a numpy "
                        "build"
                    )
                elif ratio < 5.0:
                    failures.append(
                        f"batch_codec.{key} = {ratio:.2f}x, below the 5x "
                        "vectorization floor"
                    )
        if report.get("name") == "frontend_access" and report.get(
            "config", {}
        ).get("numpy"):
            # The array tier's headline contract: batched epochs through
            # the columnar backend cost >=5x less per access than the
            # object loop whenever numpy is present.  Same-process,
            # same-stream ratio, so the gate is machine independent;
            # measured values sit near ~10x at the 256 MB geometry.
            ratio = report.get("metrics", {}).get("batch_vs_object")
            if ratio is None:
                failures.append(
                    "frontend_access missing metric 'batch_vs_object' on "
                    "a numpy build"
                )
            elif ratio < 5.0:
                failures.append(
                    f"frontend_access.batch_vs_object = {ratio:.2f}x, "
                    "below the 5x array-tier floor"
                )
        if report.get("name") == "timeseries" and not payload.get("smoke"):
            ratio = report.get("metrics", {}).get("overhead_ratio")
            if ratio is not None and ratio > TIMESERIES_OVERHEAD_CEILING:
                failures.append(
                    f"timeseries overhead_ratio = {ratio:.3f}, above the "
                    f"{TIMESERIES_OVERHEAD_CEILING}x ceiling (sampling is "
                    "supposed to be off the hot path)"
                )
    return failures


def format_payload(payload: dict) -> str:
    """Human-readable report of a suite payload."""
    from repro.analysis import format_table

    rows = []
    for report in payload["benchmarks"]:
        for metric, value in report["metrics"].items():
            rows.append([report["name"], metric, f"{value:,.3f}"])
    lines = [
        format_table(
            ["benchmark", "metric", "value"],
            rows,
            title=(
                f"perf suite (seed {payload['seed']}, "
                f"{'smoke' if payload['smoke'] else 'full'} budget, "
                f"code {payload['code_version']})"
            ),
        ),
        "",
        format_table(
            ["speedup", "ratio"],
            [[k, f"{v:.2f}x"] for k, v in payload["speedups"].items()],
            title=f"speedups (baseline: {payload['baseline']['code_version']})",
        ),
    ]
    return "\n".join(lines)


def default_output_path(root: Optional[str] = None) -> str:
    """Canonical location of the committed suite results."""
    import os

    if root is None:
        root = os.getcwd()
    return os.path.join(root, "benchmarks", "results", "BENCH_perf.json")
