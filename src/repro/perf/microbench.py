"""Micro-timing primitives shared by the perf suite.

Deliberately dependency-free (``time.perf_counter`` only): the suite runs
in CI's smoke job, so the measurement layer must work everywhere the
simulator does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict


def time_call(fn: Callable[[], object], repeats: int = 5) -> float:
    """Best-of-``repeats`` wall time of one ``fn()`` call, in seconds.

    ``fn`` is expected to loop over its own batch internally (so per-item
    times are ``time_call(fn) / batch``).  Best-of rather than mean: the
    minimum is the least noise-contaminated estimate of the code's cost.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    fn()  # untimed warmup: interpreter specialisation, memo fills, caches
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


@dataclass
class BenchReport:
    """One microbenchmark's outcome.

    ``config`` holds everything that determines *what* was measured (batch
    sizes, seeds, workload names) — the determinism test asserts it is
    identical across same-seed runs.  ``metrics`` holds the measured
    numbers; timing entries naturally vary between runs, only their *keys*
    are required to be stable.
    """

    name: str
    config: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "config": dict(self.config),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }
