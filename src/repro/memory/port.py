"""Structural interface of anything that accepts main-memory requests.

The trace cores talk to "memory" through exactly four members; both
:class:`~repro.memory.memsys.MainMemory` and the timed DRAM tier
(:class:`~repro.cache.frontend.DramCacheFrontEnd`) satisfy this shape,
which is what lets the simulator interpose the tier without the cores
changing at all.

Contract notes:

* ``submit`` may only be called after ``can_accept`` returned True in
  the same engine step (controllers raise on overfull queues).
* ``wait_for_space`` registrations are one-shot and may wake spuriously;
  callers re-check ``can_accept`` and re-register if still blocked.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.memory.request import MemoryRequest, RequestKind


@runtime_checkable
class MemoryPort(Protocol):
    """What a request producer needs from the level below it."""

    def can_accept(self, kind: RequestKind, address: int) -> bool:
        """Whether a ``kind`` transaction to ``address`` can enter now."""
        ...

    def submit(self, request: MemoryRequest) -> None:
        """Accept the request (``can_accept`` must have been True)."""
        ...

    def wait_for_space(
        self, kind: RequestKind, address: int, callback: Callable[[], None]
    ) -> None:
        """One-shot wake-up when a blocked transaction may retry."""
        ...

    @property
    def idle(self) -> bool:
        """True when no transaction is queued or in flight."""
        ...
