"""Physical address decomposition for the PCM main memory.

The paper's system (Table I) is 8 GB across 4 channels, one rank per
channel, 8 banks per rank, 8 KB rows.  Line addresses are interleaved
channel-first so consecutive lines spread over channels, then column
within a row, then bank, then row — the conventional open-page-friendly
mapping used by DRAMSim2-style simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.request import LINE_BYTES


@dataclass(frozen=True)
class DecodedAddress:
    """Coordinates of one cache line inside the memory system."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int
    line_address: int

    def bank_key(self) -> tuple:
        """Hashable (rank, bank) pair within a channel."""
        return (self.rank, self.bank)


@dataclass(frozen=True)
class MemoryGeometry:
    """Structural parameters of the memory system."""

    n_channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    row_bytes: int = 8192
    capacity_bytes: int = 8 * 1024 ** 3

    #: Data chips per rank (the paper's x8 DIMM).
    data_chips: int = 8
    #: True when the rank carries a SECDED ECC chip (chip 8).
    has_ecc_chip: bool = True
    #: True when the rank carries the PCMap PCC chip (chip 9).
    has_pcc_chip: bool = False

    def __post_init__(self) -> None:
        if self.row_bytes % LINE_BYTES:
            raise ValueError("row size must be a multiple of the line size")
        for name in ("n_channels", "ranks_per_channel", "banks_per_rank"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def chips_per_rank(self) -> int:
        """Total physical chips in a rank (data + ECC + PCC)."""
        return self.data_chips + int(self.has_ecc_chip) + int(self.has_pcc_chip)

    @property
    def ecc_chip_index(self) -> int:
        """Physical index of the fixed ECC chip (no-rotation layouts)."""
        if not self.has_ecc_chip:
            raise ValueError("geometry has no ECC chip")
        return self.data_chips

    @property
    def pcc_chip_index(self) -> int:
        """Physical index of the fixed PCC chip (no-rotation layouts)."""
        if not self.has_pcc_chip:
            raise ValueError("geometry has no PCC chip")
        return self.data_chips + int(self.has_ecc_chip)

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // LINE_BYTES

    @property
    def total_lines(self) -> int:
        return self.capacity_bytes // LINE_BYTES

    @property
    def rows_per_bank(self) -> int:
        lines_per_channel = self.total_lines // self.n_channels
        lines_per_bank = lines_per_channel // (
            self.ranks_per_channel * self.banks_per_rank
        )
        return max(1, lines_per_bank // self.lines_per_row)


class AddressMapper:
    """Maps physical byte addresses to (channel, rank, bank, row, column).

    Interleave order (low to high bits above the 64 B line offset):
    channel | column | bank | rank | row.
    """

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        #: Decode memo: the scheduler re-decodes the same request address
        #: on every queue scan, so the (immutable) result is cached per
        #: mapper.  Bounded by the working set of distinct line addresses.
        self._decoded: dict = {}

    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte address.  The address must be line aligned."""
        cached = self._decoded.get(address)
        if cached is not None:
            return cached
        if address % LINE_BYTES:
            raise ValueError(f"address {address:#x} not line aligned")
        if not 0 <= address < self.geometry.capacity_bytes:
            raise ValueError(
                f"address {address:#x} outside capacity "
                f"{self.geometry.capacity_bytes:#x}"
            )
        geo = self.geometry
        line = address // LINE_BYTES
        rest, channel = divmod(line, geo.n_channels)
        rest, column = divmod(rest, geo.lines_per_row)
        rest, bank = divmod(rest, geo.banks_per_rank)
        row, rank = divmod(rest, geo.ranks_per_channel)
        decoded = DecodedAddress(
            channel=channel,
            rank=rank,
            bank=bank,
            row=row,
            column=column,
            line_address=line,
        )
        self._decoded[address] = decoded
        return decoded

    def encode(
        self, channel: int, rank: int, bank: int, row: int, column: int
    ) -> int:
        """Inverse of :meth:`decode`; returns the byte address."""
        geo = self.geometry
        for value, limit, name in (
            (channel, geo.n_channels, "channel"),
            (rank, geo.ranks_per_channel, "rank"),
            (bank, geo.banks_per_rank, "bank"),
            (column, geo.lines_per_row, "column"),
        ):
            if not 0 <= value < limit:
                raise ValueError(f"{name} {value} out of range [0, {limit})")
        line = row
        line = line * geo.ranks_per_channel + rank
        line = line * geo.banks_per_rank + bank
        line = line * geo.lines_per_row + column
        line = line * geo.n_channels + channel
        address = line * LINE_BYTES
        if address >= geo.capacity_bytes:
            raise ValueError("encoded address exceeds capacity")
        return address


#: Paper Table I geometry for the baseline (8 data chips + ECC).
BASELINE_GEOMETRY = MemoryGeometry()

#: PCMap geometry: ten chips per rank (8 data + ECC + PCC).
PCMAP_GEOMETRY = MemoryGeometry(has_pcc_chip=True)
