"""Pluggable scheduler-policy layer for the memory controller.

A channel controller owns the *resources* (queues, ranks, buses, windows)
while an ordered chain of :class:`SchedulerPolicy` objects owns the
*decisions*.  One scheduling step of the write path runs in two phases:

1. **Pre-selection.**  Each policy may claim the step before a head write
   is even picked — e.g. write pausing resumes a paused write, or blocks
   new issue while one is mid-service.
2. **Selection.**  The controller picks the head write candidate (its
   queue discipline: strict FIFO for coarse systems, oldest-ready-first
   for fine-grained ones) and offers it to each policy in chain order;
   the first policy that issues service wins the step.

Policies also receive lifecycle notifications — reads entering the queue
(so an open RoW window can absorb them), write windows opening/closing,
and deferred-verification results — and can admit reads into open write
windows via :meth:`SchedulerPolicy.admit_overlap_read`.

The concrete mechanisms live next to the systems that introduce them:

* :class:`CoarseWritePolicy` (here) — the baseline whole-rank drain;
* :class:`repro.core.fine.SilentWritePolicy` /
  :class:`repro.core.fine.FineWritePolicy` — fine-grained (sub-ranked)
  writes;
* :class:`repro.core.row.ReadOverWritePolicy` — RoW windows (§IV-B);
* :class:`repro.core.wow.WriteOverWritePolicy` — WoW grouping (§IV-C);
* :class:`repro.core.pausing.WritePausingPolicy` — the preemption
  comparator (paper [11]);
* :class:`repro.core.palp.PartitionParallelWritePolicy` — the PALP-style
  bank-parallel comparator (Song et al.).

:func:`repro.core.systems.build_policies` composes a chain from the
``SystemConfig`` feature flags, so system variants are mix-and-match
policy stacks rather than controller subclass forks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.memory.address import DecodedAddress
from repro.memory.request import MemoryRequest

if TYPE_CHECKING:  # runtime import would be circular (controller -> policy)
    from repro.memory.controller import MemoryController
    from repro.sim.metrics import WriteWindow


@dataclass
class WriteContext:
    """The head write candidate one scheduling step deliberates over.

    Built once per step by ``MemoryController.select_write_candidate`` and
    shared by every policy in the chain, so RoW's decline, WoW's grouping
    and the plain fine-write fallback all reason about the *same* head —
    exactly like the monolithic scheduler they replaced.
    """

    now: int
    head: MemoryRequest
    decoded: DecodedAddress


@dataclass(frozen=True)
class ReadAdmission:
    """A plan admitting one read into an open write window.

    ``missing_word`` is ``None`` for a plain overlapped read (no write-busy
    chip touched); otherwise it names the data word to reconstruct from the
    PCC parity while its chip is still writing.
    """

    chips: Tuple[int, ...]
    missing_word: Optional[int] = None


@runtime_checkable
class SchedulerPolicy(Protocol):
    """Decision hooks a memory-scheduling policy may implement.

    All hooks are optional in spirit — :class:`BaseSchedulerPolicy`
    provides neutral defaults — but the signatures here are the contract
    the type checker locks down.
    """

    #: Short identifier used in chain descriptions and tests.
    name: str
    #: When True (the default read-priority discipline), queued-but-unready
    #: reads block write issue outside drain mode.  Pausing clears it: its
    #: whole point is issuing/resuming writes under a pending read.
    reads_block_writes: bool
    #: Whether queued reads are flagged ``delayed_by_write`` while the
    #: controller drains (the baseline accounting; pausing does not flag).
    mark_reads_delayed_in_drain: bool

    def bind(self, controller: "MemoryController", chain: "PolicyChain") -> None:
        """Attach to a controller; fetch metrics/resources once."""
        ...

    def pre_select(self, now: int) -> Optional[bool]:
        """Claim the write step before head selection.

        Return ``True``/``False`` to end the step with/without progress
        (stopping the chain), or ``None`` to let selection proceed.
        """
        ...

    def select_write(self, ctx: WriteContext) -> bool:
        """Issue service for ``ctx.head``; True claims the step."""
        ...

    def on_read_enqueued(self, request: MemoryRequest) -> None:
        """A read entered the queue (post-kick) — e.g. join an open window."""
        ...

    def admit_overlap_read(
        self, window: "WriteWindow", request: MemoryRequest, now: int
    ) -> Optional[ReadAdmission]:
        """Plan serving ``request`` inside ``window``, or None to refuse."""
        ...

    def on_window_open(self, window: "WriteWindow", rank: int) -> None:
        """A write service window opened on ``rank``."""
        ...

    def on_window_close(self, window: "WriteWindow", rank: int) -> None:
        """A previously opened window ended (service done or expired)."""
        ...

    def on_verify_result(self, request: MemoryRequest, rollback: bool) -> None:
        """A deferred verification resolved (rollback=True on mis-verify)."""
        ...


class BaseSchedulerPolicy:
    """Neutral defaults: participate in nothing, observe everything."""

    name: str = "base"
    reads_block_writes: bool = True
    mark_reads_delayed_in_drain: bool = True

    def __init__(self) -> None:
        self.controller: Optional["MemoryController"] = None
        self.chain: Optional["PolicyChain"] = None

    def bind(self, controller: "MemoryController", chain: "PolicyChain") -> None:
        self.controller = controller
        self.chain = chain
        self.on_bind()

    def on_bind(self) -> None:
        """Subclass hook: runs once after ``controller``/``chain`` attach."""

    def pre_select(self, now: int) -> Optional[bool]:
        return None

    def select_write(self, ctx: WriteContext) -> bool:
        return False

    def on_read_enqueued(self, request: MemoryRequest) -> None:
        return None

    def admit_overlap_read(
        self, window: "WriteWindow", request: MemoryRequest, now: int
    ) -> Optional[ReadAdmission]:
        return None

    def on_window_open(self, window: "WriteWindow", rank: int) -> None:
        return None

    def on_window_close(self, window: "WriteWindow", rank: int) -> None:
        return None

    def on_verify_result(self, request: MemoryRequest, rollback: bool) -> None:
        return None


class PolicyChain:
    """Ordered policy stack driving one controller's write scheduling."""

    def __init__(
        self,
        controller: "MemoryController",
        policies: Iterable[SchedulerPolicy],
    ) -> None:
        self.policies: List[SchedulerPolicy] = list(policies)
        if not self.policies:
            raise ValueError("a policy chain needs at least one policy")
        self._controller = controller
        for policy in self.policies:
            policy.bind(controller, self)
        # Chain-level discipline flags: one dissenting policy flips them,
        # mirroring how the pausing controller relaxed the baseline rules.
        self.reads_block_writes = all(
            p.reads_block_writes for p in self.policies
        )
        self.mark_reads_delayed_in_drain = all(
            p.mark_reads_delayed_in_drain for p in self.policies
        )
        # Per-hook dispatch lists: broadcast hooks run every scheduler
        # step (or every read submit), and most chain members inherit the
        # base no-op — drop those at bind time so the hot loops only call
        # policies that actually listen.
        self._pre_select = self._implementors("pre_select")
        self._on_read_enqueued = self._implementors("on_read_enqueued")
        self._admit_overlap_read = self._implementors("admit_overlap_read")
        self._on_window_open = self._implementors("on_window_open")
        self._on_window_close = self._implementors("on_window_close")
        self._on_verify_result = self._implementors("on_verify_result")

    def _implementors(self, hook: str) -> List[SchedulerPolicy]:
        """Chain members that override ``hook`` (base no-ops excluded)."""
        base = getattr(BaseSchedulerPolicy, hook)
        return [
            p for p in self.policies
            if getattr(type(p), hook, None) is not base
        ]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable chain summary, issue order left to right."""
        return " -> ".join(p.name for p in self.policies)

    def find(self, policy_type: type) -> Optional[SchedulerPolicy]:
        """The first chain member of ``policy_type``, if any."""
        for policy in self.policies:
            if isinstance(policy, policy_type):
                return policy
        return None

    # ------------------------------------------------------------------
    # The write step
    # ------------------------------------------------------------------
    def select_write(self, now: int) -> bool:
        """Run one write scheduling step; True when service was issued."""
        for policy in self._pre_select:
            verdict = policy.pre_select(now)
            if verdict is not None:
                return verdict
        ctx = self._controller.select_write_candidate(now)
        if ctx is None:
            return False
        for policy in self.policies:
            if policy.select_write(ctx):
                return True
        return False

    # ------------------------------------------------------------------
    # Broadcast notifications
    # ------------------------------------------------------------------
    def on_read_enqueued(self, request: MemoryRequest) -> None:
        for policy in self._on_read_enqueued:
            policy.on_read_enqueued(request)

    def admit_overlap_read(
        self, window: "WriteWindow", request: MemoryRequest, now: int
    ) -> Optional[ReadAdmission]:
        for policy in self._admit_overlap_read:
            plan = policy.admit_overlap_read(window, request, now)
            if plan is not None:
                return plan
        return None

    def on_window_open(self, window: "WriteWindow", rank: int) -> None:
        for policy in self._on_window_open:
            policy.on_window_open(window, rank)

    def on_window_close(self, window: "WriteWindow", rank: int) -> None:
        for policy in self._on_window_close:
            policy.on_window_close(window, rank)

    def on_verify_result(self, request: MemoryRequest, rollback: bool) -> None:
        for policy in self._on_verify_result:
            policy.on_verify_result(request, rollback)


class CoarseWritePolicy(BaseSchedulerPolicy):
    """Baseline write drain: coarse whole-rank writes, oldest first.

    Selection (strict FIFO + rank readiness) lives in the controller's
    ``select_write_candidate``; this policy simply services the head the
    baseline way — reserving every data chip plus ECC for the write's
    whole duration.  This is exactly the idleness PCMap's fine-grained
    policies attack.
    """

    name = "coarse-drain"

    def select_write(self, ctx: WriteContext) -> bool:
        assert self.controller is not None
        self.controller._issue_coarse_write(ctx.head, ctx.decoded, ctx.now)
        return True
