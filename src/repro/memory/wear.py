"""Start-Gap wear levelling (Qureshi et al., MICRO 2009 — the paper's [5]).

The paper notes PCMap is orthogonal to wear levelling and expects *better*
lifetime thanks to rotation balancing chip-level wear (§IV-C2).  This
module provides the line-level complement: the Start-Gap scheme remaps
logical lines onto physical lines with two registers (``start`` and
``gap``) and one spare line, moving the gap one slot every ``gap_interval``
writes so that hot lines migrate across the physical array.

The algebraic form implemented here is the one from the original paper:
with ``N`` logical lines and ``N + 1`` physical slots,

* ``physical = (logical + start) mod N``, then
* if ``physical >= gap`` the slot shifts up by one (the gap sits "before"
  it); the gap slot itself is always left free.

Every ``gap_interval`` writes the gap moves down one slot (copying one
line in hardware, charged as one extra line write); when it wraps,
``start`` advances, completing one full rotation of the address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class WearStats:
    """Write balance accounting over physical lines."""

    writes_per_line: Dict[int, int] = field(default_factory=dict)
    gap_moves: int = 0
    total_writes: int = 0

    def record(self, physical_line: int) -> None:
        self.total_writes += 1
        self.writes_per_line[physical_line] = (
            self.writes_per_line.get(physical_line, 0) + 1
        )

    def max_line_writes(self) -> int:
        if not self.writes_per_line:
            return 0
        return max(self.writes_per_line.values())

    def imbalance(self) -> float:
        """Max over mean writes per touched line (1.0 = perfectly even)."""
        if not self.writes_per_line:
            return 0.0
        mean = self.total_writes / len(self.writes_per_line)
        return self.max_line_writes() / mean if mean else 0.0


class StartGapRemapper:
    """Start-Gap address remapping over a region of ``n_lines`` lines."""

    def __init__(self, n_lines: int, gap_interval: int = 100):
        if n_lines < 2:
            raise ValueError("need at least two lines to level wear")
        if gap_interval < 1:
            raise ValueError("gap interval must be >= 1")
        self.n_lines = n_lines
        self.gap_interval = gap_interval
        self.start = 0
        #: Physical slot currently left empty; begins past the last line.
        self.gap = n_lines
        self._writes_since_move = 0
        self.stats = WearStats()

    # ------------------------------------------------------------------
    def physical_line(self, logical_line: int) -> int:
        """Current physical slot of ``logical_line``."""
        if not 0 <= logical_line < self.n_lines:
            raise ValueError(
                f"logical line {logical_line} out of range [0, {self.n_lines})"
            )
        physical = (logical_line + self.start) % self.n_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def on_write(self, logical_line: int) -> int:
        """Account a write; returns the physical slot written.

        Every ``gap_interval`` writes the gap moves one slot down (the
        line above the gap is copied into it), charging one extra line
        write to the copied line's new slot.
        """
        physical = self.physical_line(logical_line)
        self.stats.record(physical)
        self._writes_since_move += 1
        if self._writes_since_move >= self.gap_interval:
            self._writes_since_move = 0
            self._move_gap()
        return physical

    def _move_gap(self) -> None:
        self.stats.gap_moves += 1
        if self.gap == 0:
            # Gap wraps: one full rotation completed, start advances.
            self.gap = self.n_lines
            self.start = (self.start + 1) % self.n_lines
        else:
            self.gap -= 1
        # The line copied into the freed slot pays one write there.
        self.stats.record(self.gap)

    # ------------------------------------------------------------------
    def mapping_snapshot(self) -> List[int]:
        """physical slot of every logical line (tests/inspection)."""
        return [self.physical_line(line) for line in range(self.n_lines)]

    def is_permutation(self) -> bool:
        """Sanity: the current mapping must be injective."""
        snapshot = self.mapping_snapshot()
        return len(set(snapshot)) == len(snapshot)
