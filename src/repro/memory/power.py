"""PCM energy accounting.

The paper motivates PCMap partly through PCM's write power: a cell write
takes far more energy than a read, and matching DRAM write bandwidth
"would require five times more power" (§III-A2, citing [8]).  This model
converts a run's operation counts into energy, making the power cost of
each system variant comparable: PCMap performs *extra* array work (PCC
updates, deferred-verify reads) in exchange for its parallelism, and this
is where that overhead becomes visible.

Default per-operation energies follow the PCM prototype literature the
paper cites (array read ~2 pJ/bit; RESET ~19.2 pJ/bit, SET ~13.5 pJ/bit
averaged to ~16 pJ/bit at the 64-bit word granularity this simulator
schedules).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.metrics import MemoryStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy in nanojoules (64-bit word granularity)."""

    #: Array read of a 64-byte line (8 words x 64 bits x ~2 pJ/bit).
    line_read_nj: float = 1.02
    #: One 64-bit word array write (64 bits x ~16 pJ/bit).
    word_write_nj: float = 1.02
    #: ECC/PCC word update — differential, fewer bits flip.
    code_update_nj: float = 0.61
    #: Deferred-verification word read (one word + ECC word).
    verify_read_nj: float = 0.26
    #: Row activation / read-before-write compare of one line.
    compare_nj: float = 1.02

    def run_energy_uj(self, stats: MemoryStats, code_chips: tuple = (8, 9)) -> float:
        """Total array energy of a run in microjoules.

        ``code_chips`` only matters for non-rotated layouts, where code
        updates can be split out of ``chip_word_writes`` exactly; with
        rotation the split is approximated from the write counts.
        """
        total_word_writes = sum(stats.chip_word_writes.values())
        code_updates = sum(
            count
            for chip, count in stats.chip_word_writes.items()
            if chip in code_chips
        )
        data_word_writes = total_word_writes - code_updates
        energy_nj = (
            stats.reads_completed * self.line_read_nj
            + data_word_writes * self.word_write_nj
            + code_updates * self.code_update_nj
            + stats.verify_count * self.verify_read_nj
            + stats.silent_writes * self.compare_nj
        )
        return energy_nj / 1000.0

    def energy_per_request_nj(self, stats: MemoryStats) -> float:
        """Average array energy per completed request."""
        requests = stats.reads_completed + stats.writes_completed
        if not requests:
            return 0.0
        return self.run_energy_uj(stats) * 1000.0 / requests


#: Defaults derived from the prototype data the paper cites.
DEFAULT_ENERGY_MODEL = EnergyModel()
