"""Memory request records exchanged between CPU, caches and controllers.

A request always addresses one 64-byte cache line.  Write requests carry
the *dirty-word mask* produced by the write-back path (one bit per 8-byte
word); in functional mode they additionally carry the old and new line
contents so the essential-word detector and the ECC machinery can operate
on real bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Tuple

if TYPE_CHECKING:  # address.py imports LINE_BYTES from here — no cycle
    from repro.memory.address import DecodedAddress

LINE_BYTES = 64
WORDS_PER_LINE = 8
WORD_BYTES = LINE_BYTES // WORDS_PER_LINE


class RequestKind(enum.Enum):
    """Type of a main-memory transaction."""

    READ = "read"
    WRITE = "write"


class ServiceClass(enum.Enum):
    """How a request ended up being serviced (for metrics)."""

    NORMAL = "normal"          #: ordinary coarse-grained service
    ROW_OVERLAP = "row"        #: read served over a write via PCC reconstruction
    WOW_MEMBER = "wow"         #: write consolidated into a WoW group
    SILENT = "silent"          #: write with zero dirty words (compare only)


def popcount(mask: int) -> int:
    """Number of set bits (dirty words) in a word mask."""
    return mask.bit_count()


#: ``mask -> ascending dirty-word indices`` for all 8-bit masks; shared by
#: every request's ``dirty_words`` property (the scheduler queries it on
#: each candidate scan).
_DIRTY_WORDS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(i for i in range(WORDS_PER_LINE) if (mask >> i) & 1)
    for mask in range(1 << WORDS_PER_LINE)
)


@dataclass(eq=False, slots=True)
class MemoryRequest:
    """One line-granularity main-memory transaction.

    Timing fields are engine ticks.  ``completion`` is set by the memory
    controller when the request finishes; ``on_complete`` (if set) fires
    at that moment so the CPU model can unstall.

    Requests compare (and hash) by identity: every transaction is a
    distinct object, and the queue membership / removal the scheduler
    performs per issue must not pay a field-by-field dataclass compare.
    Slots, because the scheduler's candidate scans are attribute-bound:
    they touch several fields of every queued request each step.
    """

    req_id: int
    kind: RequestKind
    address: int                     #: byte address, line aligned
    core_id: int = 0
    arrival: int = 0                 #: tick the request reached the controller
    #: Tick the requester first *wanted* to issue (may precede ``arrival``
    #: when queue back-pressure blocked it); -1 when unset.  Effective
    #: read latency is measured from here so systems that admit reads
    #: faster are not penalised by the extra visible queueing.
    requested_at: int = -1

    #: Writes: bit ``i`` set when 8-byte word ``i`` differs from memory.
    dirty_mask: int = 0
    #: Functional mode: the eight 64-bit words being written (writes).
    new_words: Optional[Tuple[int, ...]] = None
    #: Functional mode: previous contents (filled by essential-word logic).
    old_words: Optional[Tuple[int, ...]] = None

    # ----- filled in by the controller ---------------------------------
    start_service: int = -1          #: tick service began (array/bus work)
    completion: int = -1             #: tick the request fully completed
    service_class: ServiceClass = ServiceClass.NORMAL
    #: Read was pushed back because the rank/bank was draining or busy
    #: with a write (Figure 1's "delayed by write" predicate).
    delayed_by_write: bool = False
    #: RoW reads: tick the deferred SECDED verification completed.
    verify_completion: int = -1
    #: RoW reads: verification failed and the CPU had to roll back.
    rolled_back: bool = False
    #: Functional mode, reads: data returned to the requester.
    data_words: Optional[Tuple[int, ...]] = None

    on_complete: Optional[Callable[["MemoryRequest"], None]] = None
    #: RoW reads: fires when deferred verification finishes; the second
    #: argument is True when the verification failed (rollback needed).
    on_verify: Optional[Callable[["MemoryRequest", bool], None]] = None

    # ----- scheduler fast-path caches -----------------------------------
    #: Line index (byte address / 64); precomputed, the address is final.
    line_address: int = field(init=False, repr=False)
    #: Decoded address, cached by the owning controller at submit (the
    #: request is routed to exactly one channel, so one mapper applies).
    decoded: Optional["DecodedAddress"] = field(
        init=False, repr=False, default=None
    )
    #: Chips the request touches, cached at submit *after* essential-word
    #: detection finalises ``dirty_mask``: ``read_chips`` for reads,
    #: ``dirty_chips`` for writes.  The candidate scans the scheduler
    #: runs per issue re-query these constantly.
    chips: Optional[Tuple[int, ...]] = field(
        init=False, repr=False, default=None
    )
    #: ``(rank_version, ready_tick)`` memo of the request's ready time
    #: over :attr:`chips` — valid while the owning rank's reservation
    #: counter still equals the stored version.  Written only by the
    #: controller scan loops; a request always targets one rank and one
    #: ready-time flavour, so the cache cannot be confused across uses.
    ready_cache: Optional[Tuple[int, int]] = field(
        init=False, repr=False, default=None
    )
    #: ``(data_chips, code_chips)`` sets for WoW group admission; line
    #: address and dirty mask are final once queued, so the sets are
    #: computed once per write instead of once per admission scan.
    wow_sets: Optional[Tuple[set, set]] = field(
        init=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        if self.address % LINE_BYTES:
            raise ValueError(
                f"address {self.address:#x} not {LINE_BYTES}-byte aligned"
            )
        if not 0 <= self.dirty_mask < (1 << WORDS_PER_LINE):
            raise ValueError(f"dirty mask out of range: {self.dirty_mask:#x}")
        if self.kind is RequestKind.READ and self.dirty_mask:
            raise ValueError("read requests cannot carry a dirty mask")
        if self.new_words is not None and len(self.new_words) != WORDS_PER_LINE:
            raise ValueError("new_words must have 8 entries")
        self.line_address = self.address // LINE_BYTES

    @property
    def is_read(self) -> bool:
        return self.kind is RequestKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is RequestKind.WRITE

    @property
    def dirty_words(self) -> Tuple[int, ...]:
        """Indices of dirty words, ascending."""
        return _DIRTY_WORDS[self.dirty_mask]

    @property
    def dirty_count(self) -> int:
        """Number of essential (dirty) words."""
        return self.dirty_mask.bit_count()

    @property
    def latency(self) -> int:
        """Arrival-to-completion latency in ticks (valid after service)."""
        if self.completion < 0:
            raise ValueError(f"request {self.req_id} not completed yet")
        return self.completion - self.arrival

    @property
    def effective_latency(self) -> int:
        """Completion minus first-wanted time (includes back-pressure)."""
        if self.completion < 0:
            raise ValueError(f"request {self.req_id} not completed yet")
        origin = self.requested_at if self.requested_at >= 0 else self.arrival
        return self.completion - origin

    def complete(self, now: int) -> None:
        """Mark the request complete and fire its callback."""
        self.completion = now
        if self.on_complete is not None:
            self.on_complete(self)


def make_read(req_id: int, address: int, core_id: int = 0) -> MemoryRequest:
    """Convenience constructor for a read request."""
    return MemoryRequest(req_id, RequestKind.READ, address, core_id=core_id)


def make_write(
    req_id: int,
    address: int,
    dirty_mask: int,
    core_id: int = 0,
    new_words: Optional[Tuple[int, ...]] = None,
) -> MemoryRequest:
    """Convenience constructor for a write-back request."""
    return MemoryRequest(
        req_id,
        RequestKind.WRITE,
        address,
        core_id=core_id,
        dirty_mask=dirty_mask,
        new_words=new_words,
    )
