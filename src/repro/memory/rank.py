"""Rank resource model: per-chip, per-bank occupancy and row-buffer state.

The central modelling decision (DESIGN.md §5): a PCM chip's write circuitry
is a single-server resource — while a chip is array-writing, it can serve
no other access in *any* bank (this is the premise of the paper: "from the
read queue perspective, these chips are not available as if they are
faulty", §IV-B).  Reads, on the other hand, overlap across banks of a chip
exactly as in DRAM.

Concretely, every chip tracks

* ``write_busy_until`` — exclusive across the whole chip, set by array
  writes (data words, ECC/PCC updates);
* per-bank ``array_busy_until`` — set by reads and writes touching that
  bank of the chip;
* per-bank ``open_row`` — the row currently latched in the row buffer.

Reservation methods return nothing; callers first query ``*_ready_time``
to decide when an operation may start, then reserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.memory.timing import TimingParams


@dataclass(frozen=True)
class OccupancyEvent:
    """One logged chip reservation (for timelines and debugging)."""

    kind: str        #: "read" or "write"
    chip: int
    bank: int
    start: int       #: tick the work begins (-1 when unknown)
    end: int         #: tick the chip frees
    label: str = ""  #: request tag supplied by the controller


class ChipState:
    """Occupancy and row-buffer state of one physical PCM chip."""

    __slots__ = (
        "write_busy_until", "array_busy_until", "array_busy_max", "open_row"
    )

    def __init__(self, n_banks: int):
        self.write_busy_until = 0
        self.array_busy_until: List[int] = [0] * n_banks
        #: Running ``max(array_busy_until)``.  Busy-until values only ever
        #: move forward (reservations take the max with the new end), so
        #: the maximum can be maintained incrementally instead of being
        #: rescanned on every :meth:`write_ready` query.
        self.array_busy_max = 0
        self.open_row: List[Optional[int]] = [None] * n_banks

    def read_ready(self, bank: int) -> int:
        """Earliest tick a read may start on ``bank`` of this chip."""
        busy = self.array_busy_until[bank]
        write_busy = self.write_busy_until
        return busy if busy >= write_busy else write_busy

    def write_ready(self, bank: int) -> int:
        """Earliest tick an array write may start on ``bank``.

        The chip's write circuitry is exclusive with *all* array activity
        (the premise that makes a writing chip unavailable to reads also
        bars starting a write under an in-flight read on any bank).
        """
        busy = self.array_busy_max
        write_busy = self.write_busy_until
        return busy if busy >= write_busy else write_busy

    def reserve_read(self, bank: int, end: int, row: Optional[int]) -> None:
        """Occupy the bank's array until ``end``; latch ``row`` if given."""
        busy = self.array_busy_until
        if end > busy[bank]:
            busy[bank] = end
            if end > self.array_busy_max:
                self.array_busy_max = end
        if row is not None:
            self.open_row[bank] = row

    def reserve_write(self, bank: int, end: int, row: Optional[int]) -> None:
        """Occupy the chip's write circuitry (all banks) until ``end``."""
        if end > self.write_busy_until:
            self.write_busy_until = end
        busy = self.array_busy_until
        if end > busy[bank]:
            busy[bank] = end
            if end > self.array_busy_max:
                self.array_busy_max = end
        if row is not None:
            self.open_row[bank] = row


class RankState:
    """All chips of one rank plus helpers for multi-chip operations."""

    def __init__(
        self,
        timing: TimingParams,
        n_chips: int,
        n_banks: int,
        channel: int = 0,
        rank_index: int = 0,
        tracer=None,
    ):
        self.timing = timing
        self.n_chips = n_chips
        self.n_banks = n_banks
        self.channel = channel
        self.rank_index = rank_index
        self.chips: List[ChipState] = [ChipState(n_banks) for _ in range(n_chips)]
        #: Bumped by every reservation.  Ready-time answers are pure
        #: functions of chip state, so schedulers cache them per request
        #: stamped with this counter and skip the chip scan while the
        #: rank hasn't changed (wake-timer rescans mostly haven't).
        self.version = 0
        #: When set (e.g. by the timeline example), every reservation is
        #: appended here as an :class:`OccupancyEvent`.
        self.occupancy_log: Optional[List[OccupancyEvent]] = None
        #: Label applied to logged events; controllers set it per request.
        self.log_label: str = ""
        if tracer is None:
            from repro.telemetry.tracer import NULL_TRACER

            tracer = NULL_TRACER
        #: Structured-event tracer; every reservation becomes a
        #: ``chip.reserve``/``chip.release`` pair when tracing is on.
        self.tracer = tracer

    def enable_logging(self) -> List[OccupancyEvent]:
        """Turn on occupancy logging; returns the (live) event list."""
        self.occupancy_log = []
        return self.occupancy_log

    def _log(self, kind: str, chip: int, bank: int, start: int, end: int) -> None:
        if self.occupancy_log is not None:
            self.occupancy_log.append(
                OccupancyEvent(kind, chip, bank, start, end, self.log_label)
            )
        if self.tracer.enabled:
            self._trace(kind, chip, bank, start, end)

    def _trace(self, kind: str, chip: int, bank: int, start: int, end: int) -> None:
        from repro.telemetry.tracer import EventType, TraceEvent

        common = dict(
            channel=self.channel,
            rank=self.rank_index,
            chip=chip,
            bank=bank,
            start=start,
            end=end,
            kind=kind,
            reason=self.log_label,
        )
        self.tracer.emit(
            TraceEvent(
                EventType.CHIP_RESERVE,
                tick=start if start >= 0 else end,
                **common,
            )
        )
        self.tracer.emit(
            TraceEvent(EventType.CHIP_RELEASE, tick=end, **common)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def read_ready_time(self, chips: Iterable[int], bank: int) -> int:
        """Earliest tick a striped read over ``chips`` may start."""
        states = self.chips
        ready = 0
        for c in chips:
            chip = states[c]
            busy = chip.array_busy_until[bank]
            if chip.write_busy_until > busy:
                busy = chip.write_busy_until
            if busy > ready:
                ready = busy
        return ready

    def write_ready_time(self, chips: Iterable[int], bank: int) -> int:
        """Earliest tick a (multi-chip) write may start."""
        states = self.chips
        ready = 0
        for c in chips:
            chip = states[c]
            busy = chip.array_busy_max
            if chip.write_busy_until > busy:
                busy = chip.write_busy_until
            if busy > ready:
                ready = busy
        return ready

    def chip_write_busy_until(self, chip: int) -> int:
        return self.chips[chip].write_busy_until

    def busy_chips_at(self, time: int) -> Tuple[int, ...]:
        """Chips whose write circuitry is busy at ``time``.

        This is exactly what the PCMap controller learns by polling the
        DIMM status register (paper §IV-D1).
        """
        return tuple(
            c for c in range(self.n_chips)
            if self.chips[c].write_busy_until > time
        )

    def row_hit(self, chips: Iterable[int], bank: int, row: int) -> bool:
        """True when every involved chip already has ``row`` latched."""
        return all(self.chips[c].open_row[bank] == row for c in chips)

    def row_open_any(self, chips: Iterable[int], bank: int) -> bool:
        """True when any involved chip has some row latched in ``bank``."""
        return any(self.chips[c].open_row[bank] is not None for c in chips)

    # ------------------------------------------------------------------
    # Activation cost
    # ------------------------------------------------------------------
    def activation_ticks(self, chips: Sequence[int], bank: int, row: int) -> int:
        """Array time to make ``row`` available on all involved chips.

        Row hit costs nothing; a conflict pays the row close plus the
        array read; an empty row buffer pays only the array read.
        """
        read_ticks = self.timing.array_read_ticks
        conflict_ticks = self.timing.row_close_ticks + read_ticks
        states = self.chips
        worst = 0
        for c in chips:
            open_row = states[c].open_row[bank]
            if open_row == row:
                continue
            cost = read_ticks if open_row is None else conflict_ticks
            if cost > worst:
                worst = cost
        return worst

    # ------------------------------------------------------------------
    # Reservations
    # ------------------------------------------------------------------
    def reserve_read(
        self,
        chips: Iterable[int],
        bank: int,
        end: int,
        row: Optional[int],
        start: int = -1,
    ) -> None:
        self.version += 1
        states = self.chips
        if self.occupancy_log is None and not self.tracer.enabled:
            for c in chips:
                states[c].reserve_read(bank, end, row)
            return
        for c in chips:
            states[c].reserve_read(bank, end, row)
            self._log("read", c, bank, start, end)

    def reserve_write(
        self,
        chips: Iterable[int],
        bank: int,
        end: int,
        row: Optional[int],
        start: int = -1,
    ) -> None:
        self.version += 1
        states = self.chips
        if self.occupancy_log is None and not self.tracer.enabled:
            for c in chips:
                states[c].reserve_write(bank, end, row)
            return
        for c in chips:
            states[c].reserve_write(bank, end, row)
            self._log("write", c, bank, start, end)

    def reserve_chip_write(
        self,
        chip: int,
        bank: int,
        end: int,
        row: Optional[int],
        start: int = -1,
    ) -> None:
        """Reserve a single chip's write circuitry (fine-grained write)."""
        self.version += 1
        self.chips[chip].reserve_write(bank, end, row)
        if self.occupancy_log is not None or self.tracer.enabled:
            self._log("write", chip, bank, start, end)

    # ------------------------------------------------------------------
    def earliest_all_free(self, chips: Iterable[int], bank: int) -> int:
        """Alias of :meth:`read_ready_time` with clearer intent at call sites."""
        return self.read_ready_time(chips, bank)
