"""Shared channel data-bus model with direction turnaround.

A DDR3 channel carries one burst at a time; consecutive bursts are
separated by at least ``tCCD`` and a direction change additionally pays
the write-to-read (``tWTR``) or read-to-write (``tRTW``) turnaround
(paper §II-B).  PCMap's sub-ranked DIMM splits the physical bus into ten
partial buses, one per chip (paper §IV-D1, Figure 7); fine-grained
transfers then reserve only their own chip's link, which this model
exposes through :meth:`reserve_partial`.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.memory.timing import TimingParams


class BusDirection(enum.Enum):
    """Direction of a data-bus transfer."""

    READ = "read"    #: DIMM -> controller
    WRITE = "write"  #: controller -> DIMM


class ChannelBus:
    """One channel's data bus.

    ``reserve`` serialises full-width (coarse) bursts; ``reserve_partial``
    serialises per-chip sub-link bursts and only enforces turnaround on
    the individual link, modelling the PCMap partial data buses.
    """

    def __init__(self, timing: TimingParams, n_chips: int):
        self.timing = timing
        self.n_chips = n_chips
        self._free_at = 0
        self._last_direction: Optional[BusDirection] = None
        self._chip_free_at: List[int] = [0] * n_chips
        self._chip_last_dir: List[Optional[BusDirection]] = [None] * n_chips
        #: Total ticks the full-width bus spent transferring (utilisation).
        self.busy_ticks = 0

    # ------------------------------------------------------------------
    def _gap(self, last: Optional[BusDirection], new: BusDirection) -> int:
        """Minimum idle gap before a burst of ``new`` direction."""
        timing = self.timing
        if last is None:
            return 0
        if last is new:
            # tCCD already covers burst-to-burst spacing; our bursts are
            # modelled back-to-back, so only the excess over the burst
            # length applies.
            excess = timing.cycles(timing.tCCD) - timing.burst_ticks
            return max(0, excess)
        if last is BusDirection.WRITE and new is BusDirection.READ:
            return timing.cycles(timing.tWTR)
        return timing.cycles(timing.tRTW)

    def reserve(
        self, direction: BusDirection, earliest: int, duration: Optional[int] = None
    ) -> Tuple[int, int]:
        """Reserve a full-width burst; returns (start, end) ticks.

        The burst starts no earlier than ``earliest`` and after any
        required turnaround gap.  ``duration`` defaults to one burst.
        """
        if duration is None:
            duration = self.timing.burst_ticks
        start = max(earliest, self._free_at + self._gap(self._last_direction, direction))
        end = start + duration
        self._free_at = end
        self._last_direction = direction
        self.busy_ticks += duration
        # A full-width burst occupies every sub-link as well.
        chip_free = self._chip_free_at
        for chip in range(self.n_chips):
            if end > chip_free[chip]:
                chip_free[chip] = end
        self._chip_last_dir = [direction] * self.n_chips
        return start, end

    def reserve_partial(
        self,
        chip: int,
        direction: BusDirection,
        earliest: int,
        duration: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Reserve one chip's partial bus (PCMap sub-ranked transfer)."""
        if not 0 <= chip < self.n_chips:
            raise ValueError(f"chip {chip} out of range [0, {self.n_chips})")
        if duration is None:
            # A 64-bit word over the 8-bit sub-link is still a burst of 8.
            duration = self.timing.burst_ticks
        start = max(
            earliest,
            self._chip_free_at[chip]
            + self._gap(self._chip_last_dir[chip], direction),
        )
        end = start + duration
        self._chip_free_at[chip] = end
        self._chip_last_dir[chip] = direction
        return start, end

    # ------------------------------------------------------------------
    @property
    def free_at(self) -> int:
        """Tick at which the full-width bus becomes free."""
        return self._free_at

    def chip_free_at(self, chip: int) -> int:
        """Tick at which one partial bus becomes free."""
        return self._chip_free_at[chip]
