"""Baseline PCM memory controller (paper §II-B).

One controller owns one 64/72-bit channel: a read queue, a write queue,
the rank resource state, and the shared data bus.  Scheduling policy:

* **Read-over-write priority** — reads are serviced FR-FCFS (row hits
  first, then oldest).  Writes buffer in the write queue.
* **Watermark drain** — once the write queue is more than ``alpha`` = 80 %
  full, the controller turns the bus around and drains writes (oldest
  first) until the queue falls below the low watermark; reads wait.
* **Opportunistic writes** — when the read queue is empty, queued writes
  are issued even below the watermark.

The *write-issue decision* is delegated to an ordered
:class:`repro.memory.policy.PolicyChain`: the controller picks the head
candidate (its queue discipline) and the chain's policies decide how to
service it.  The baseline chain is a single
:class:`~repro.memory.policy.CoarseWritePolicy` — whole-rank writes whose
chip idleness is exactly what PCMap attacks and the IRLP recorder
measures.  :class:`repro.core.controller.PCMapController` swaps in the
fine-grained RoW/WoW policy stack instead of forking the issue path.

The controller is event-driven: ``_kick`` runs whenever a request arrives
or a resource frees, issues everything that can start *now*, and arms a
wake-up at the earliest future time anything could start.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.memory.address import AddressMapper, DecodedAddress
from repro.memory.bus import BusDirection, ChannelBus
from repro.memory.policy import PolicyChain, WriteContext
from repro.memory.queues import RequestQueue, WriteQueue
from repro.memory.rank import RankState
from repro.memory.request import (
    MemoryRequest,
    RequestKind,
    ServiceClass,
    WORDS_PER_LINE,
)
from repro.memory.storage import MemoryStorage
from repro.memory.timing import WriteLatencyMode
from repro.sim.engine import Engine, ticks_to_ns
from repro.sim.metrics import IrlpRecorder, MemoryStats, WriteWindow
from repro.telemetry import EventType, Telemetry, TraceEvent

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.core.config import SystemConfig


class MemoryController:
    """Scheduler and resource manager for one memory channel."""

    def __init__(
        self,
        engine: Engine,
        config: "SystemConfig",
        channel_id: int = 0,
        storage: Optional[MemoryStorage] = None,
        seed: int = 1,
        telemetry: Optional[Telemetry] = None,
    ):
        # Runtime imports: repro.core builds on this module, so importing
        # its helpers at module scope would create an import cycle.
        from repro.core.essential import EssentialWordDetector
        from repro.core.rotation import make_layout

        self.engine = engine
        self.config = config
        self.timing = config.timing
        self.geometry = config.geometry
        self.channel_id = channel_id
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.tracer = self.telemetry.tracer
        self.mapper = AddressMapper(config.geometry)
        self.layout = make_layout(
            config.geometry, config.rotate_data, config.rotate_ecc
        )
        self.read_q = RequestQueue(
            config.read_queue_capacity, name=f"ch{channel_id}-rq"
        )
        self.write_q = WriteQueue(
            config.write_queue_capacity,
            config.drain_high_watermark,
            config.drain_low_watermark,
            name=f"ch{channel_id}-wq",
        )
        self.ranks: List[RankState] = [
            RankState(
                config.timing,
                config.geometry.chips_per_rank,
                config.geometry.banks_per_rank,
                channel=channel_id,
                rank_index=rank,
                tracer=self.tracer,
            )
            for rank in range(config.geometry.ranks_per_channel)
        ]
        self.bus = ChannelBus(config.timing, config.geometry.chips_per_rank)
        self.storage = storage
        self.detector = EssentialWordDetector(storage)
        self.stats = MemoryStats()
        self.irlp = IrlpRecorder()
        self.rng = random.Random(seed * 7919 + channel_id)

        self.drain = False
        self._wake_handle = None
        self._wake_time: Optional[int] = None
        #: ``(state, earliest_future)`` memo of a failed read scan; valid
        #: while the read queue and rank reservations are unchanged.
        self._read_scan_memo: Optional[Tuple[int, int]] = None
        self._open_windows: List[WriteWindow] = []
        self._in_kick = False
        #: Optional observer called with each read request right after it
        #: completes (differential-oracle wiring).  None in normal runs:
        #: the completion path pays one attribute check.
        self.read_completion_hook: Optional[Callable[[MemoryRequest], None]] = None

        # Always-on metrics: instruments are fetched once here so the hot
        # path pays attribute access + integer ops only.  The registry is
        # shared across channels, so these counters aggregate globally.
        metrics = self.telemetry.metrics
        self.read_q.attach_metrics(metrics, f"ch{channel_id}.queue.read")
        self.write_q.attach_metrics(metrics, f"ch{channel_id}.queue.write")
        self._m_reads_enqueued = metrics.counter("requests.read.enqueued")
        self._m_writes_enqueued = metrics.counter("requests.write.enqueued")
        self._m_reads_completed = metrics.counter("reads.completed")
        self._m_writes_completed = metrics.counter("writes.completed")
        self._m_reads_forwarded = metrics.counter("reads.forwarded")
        self._m_reads_delayed = metrics.counter("reads.delayed_by_write")
        self._m_drain_entries = metrics.counter("drain.entries")
        self._m_read_latency = metrics.histogram(
            "read.latency_ns",
            buckets=(50, 100, 150, 200, 300, 500, 750, 1000, 1500,
                     2000, 4000, 8000, 16000),
        )

        #: Ordered scheduling-policy stack driving the write-issue path.
        #: Built last so policies bind against a fully constructed
        #: controller (subclasses hook ``_build_policy_chain`` to install
        #: their engines/resources first).
        self.policies: PolicyChain = self._build_policy_chain()

    def _build_policy_chain(self) -> PolicyChain:
        """Compose the policy chain for this controller's config."""
        # Runtime import: repro.core.systems builds on repro.memory.
        from repro.core.systems import build_policies

        return PolicyChain(self, build_policies(self.config))

    # ==================================================================
    # External interface
    # ==================================================================
    def can_accept(self, kind: RequestKind) -> bool:
        queue = self.read_q if kind is RequestKind.READ else self.write_q
        return not queue.full

    def wait_for_space(self, kind: RequestKind, callback) -> None:
        queue = self.read_q if kind is RequestKind.READ else self.write_q
        queue.wait_for_space(callback)

    def submit(self, request: MemoryRequest) -> None:
        """Accept a request; raises when the target queue is full."""
        request.arrival = self.engine.now
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.REQUEST_ENQUEUE,
                tick=request.arrival,
                channel=self.channel_id,
                req_id=request.req_id,
                kind=request.kind.value,
            ))
        if request.is_read:
            self._m_reads_enqueued.inc()
            if self._try_forward_read(request):
                return
            # Queued: decode + chip set are final, cache them once for the
            # FR-FCFS scans (the scheduler revisits every queued request
            # each step).  MainMemory.submit may have decoded already
            # while routing the request here.
            decoded = request.decoded
            if decoded is None:
                request.decoded = decoded = self.mapper.decode(request.address)
            request.chips = self.layout.read_chips(decoded.line_address)
            self.read_q.push(request)
            if self.drain:
                request.delayed_by_write = True
        else:
            self._m_writes_enqueued.inc()
            self.detector.detect(request)
            # Cache after detection: the detector is what finalises
            # ``dirty_mask``.  Silent writes cache their compare set
            # (all data chips), dirty writes their essential-chip set —
            # exactly what the write-candidate scans re-derive per step.
            decoded = request.decoded
            if decoded is None:
                request.decoded = decoded = self.mapper.decode(request.address)
            if request.dirty_mask:
                request.chips = self.layout.dirty_chips(
                    decoded.line_address, request.dirty_mask
                )
            else:
                request.chips = self.layout.all_data_chips(
                    decoded.line_address
                )
            self.stats.record_write(request.dirty_count)
            self.write_q.push(request)
        self._kick()
        if request.is_read and request.completion < 0:
            # Still queued after the kick: let policies react — e.g. an
            # open RoW window absorbs reads arriving mid-window.
            self.policies.on_read_enqueued(request)

    @property
    def idle(self) -> bool:
        """True when both queues are empty (no pending work)."""
        return self.read_q.empty and self.write_q.empty

    @property
    def open_window_count(self) -> int:
        """Write windows currently open (time-series sampler probe)."""
        return len(self._open_windows)

    # ==================================================================
    # Scheduling loop
    # ==================================================================
    def _kick(self) -> None:
        if self._in_kick:
            return
        self._in_kick = True
        try:
            self._wake_time = None
            self._prune_windows()
            while self._schedule_once():
                pass
            self._arm_wake()
        finally:
            self._in_kick = False

    def _schedule_once(self) -> bool:
        """Issue at most one service; returns True when progress was made.

        Read issue stays built in (FR-FCFS is common to every system);
        the write step is one pass through the policy chain.
        """
        self._update_drain()
        now = self.engine.now
        if self.drain:
            # Drain mode: writes only; reads wait (the baseline policy the
            # paper's Figure 1 quantifies).  Pausing opts out of the
            # delayed-read flagging via its chain discipline flag.
            if self.policies.mark_reads_delayed_in_drain and not self.read_q.empty:
                for read in self.read_q:
                    read.delayed_by_write = True
            return self.policies.select_write(now)
        if not self.read_q.empty:
            if self._try_issue_read(now):
                return True
            if self.policies.reads_block_writes:
                # Read-priority discipline: a queued-but-unready read
                # holds the channel; only pausing-style chains proceed.
                return False
        if not self.write_q.empty:
            return self.policies.select_write(now)
        return False

    def _update_drain(self) -> None:
        if not self.drain and self.write_q.above_high_watermark:
            self.drain = True
            self.stats.drain_entries += 1
            self._m_drain_entries.inc()
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    EventType.DRAIN_ENTER,
                    tick=self.engine.now,
                    channel=self.channel_id,
                    extra={"write_queue_depth": len(self.write_q)},
                ))
        elif self.drain and self.write_q.below_low_watermark:
            self.drain = False
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    EventType.DRAIN_EXIT,
                    tick=self.engine.now,
                    channel=self.channel_id,
                    extra={"write_queue_depth": len(self.write_q)},
                ))

    # ------------------------------------------------------------------
    # Wake management
    # ------------------------------------------------------------------
    def _note_wake(self, time: int) -> None:
        if time <= self.engine.now:
            time = self.engine.now + 1
        if self._wake_time is None or time < self._wake_time:
            self._wake_time = time

    def _arm_wake(self) -> None:
        if self._wake_time is None:
            return
        if self._wake_handle is not None and not self._wake_handle.cancelled:
            if self._wake_handle.time <= self._wake_time:
                return
            self._wake_handle.cancel()
        self._wake_handle = self.engine.schedule_at(self._wake_time, self._kick)

    # ==================================================================
    # Read path
    # ==================================================================
    def _try_forward_read(self, req: MemoryRequest) -> bool:
        """Serve a read from the write queue when the line is buffered.

        A read that matches a queued (or in-flight) write must observe the
        write's data; the controller forwards it from its buffers at SRAM
        speed instead of touching the PCM array.
        """
        line_address = req.line_address
        if not self.write_q.has_line(line_address):
            return False
        matches = [
            w for w in self.write_q if w.line_address == line_address
        ]
        if self.storage is not None:
            # In-flight writes already committed to the functional store;
            # overlay the still-pending ones in queue (FIFO) order.
            words = list(self.storage.read_line(req.line_address).words)
            for write in matches:
                if write.start_service >= 0 or write.new_words is None:
                    continue
                for w in range(WORDS_PER_LINE):
                    if (write.dirty_mask >> w) & 1:
                        words[w] = write.new_words[w]
            req.data_words = tuple(words)
        self.stats.forwarded_reads += 1
        self._m_reads_forwarded.inc()
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.REQUEST_ISSUE,
                tick=self.engine.now,
                channel=self.channel_id,
                req_id=req.req_id,
                kind="read",
                reason="forwarded-from-write-queue",
            ))
        end = self.engine.now + self.timing.read_io_ticks
        self.engine.call_at(end, self._complete_read, req)
        return True

    def _try_issue_read(self, now: int) -> bool:
        """FR-FCFS over the read queue; returns True if a read was issued."""
        ranks = self.ranks
        # Whole-scan memo (see ``select_write_candidate``): a failed scan
        # stays failed while the read queue and every rank reservation
        # counter are unchanged and ``now`` has not reached the earliest
        # ready time it computed.
        state = self.read_q.version
        for r in ranks:
            state += r.version
        memo = self._read_scan_memo
        if memo is not None and memo[0] == state and memo[1] > now:
            self._note_wake(memo[1])
            return False
        best: Optional[MemoryRequest] = None
        best_hit = False
        earliest_future: Optional[int] = None
        for req in self.read_q:
            decoded = req.decoded
            if decoded is None:  # queued outside submit (direct tests)
                decoded = self.mapper.decode(req.address)
            rank = ranks[decoded.rank]
            chips = req.chips
            if chips is None:
                chips = self.layout.read_chips(decoded.line_address)
            version = rank.version
            cached = req.ready_cache
            if cached is not None and cached[0] == version:
                ready = cached[1]
            else:
                ready = rank.read_ready_time(chips, decoded.bank)
                req.ready_cache = (version, ready)
            if ready > now:
                if earliest_future is None or ready < earliest_future:
                    earliest_future = ready
                continue
            hit = rank.row_hit(chips, decoded.bank, decoded.row)
            if best is None or (hit and not best_hit):
                best, best_hit = req, hit
                if hit:
                    break  # row hit + oldest-first: good enough
        if best is None:
            if earliest_future is not None:
                self._read_scan_memo = (state, earliest_future)
                self._note_wake(earliest_future)
            return False
        self._issue_read(best, now)
        return True

    def _issue_read(self, req: MemoryRequest, now: int) -> None:
        decoded = req.decoded
        if decoded is None:
            decoded = self.mapper.decode(req.address)
        rank = self.ranks[decoded.rank]
        chips = req.chips
        if chips is None:
            chips = self.layout.read_chips(decoded.line_address)
        start = max(now, rank.read_ready_time(chips, decoded.bank))
        activation = rank.activation_ticks(chips, decoded.bank, decoded.row)
        if activation == 0:
            self.stats.row_buffer_hits += 1
        else:
            self.stats.row_buffer_misses += 1
        cas_ready = start + activation + self.timing.cycles(self.timing.tCL)
        _bus_start, bus_end = self.bus.reserve(BusDirection.READ, cas_ready)
        rank.log_label = f"Rd-{req.req_id}"
        rank.reserve_read(chips, decoded.bank, bus_end, decoded.row, start=start)

        req.start_service = start
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.REQUEST_ISSUE,
                tick=self.engine.now,
                channel=self.channel_id,
                rank=decoded.rank,
                bank=decoded.bank,
                req_id=req.req_id,
                start=start,
                end=bus_end,
                kind="read",
            ))
        if not req.delayed_by_write:
            arrival = req.arrival
            chip_states = rank.chips
            for c in chips:
                if chip_states[c].write_busy_until > arrival:
                    req.delayed_by_write = True
                    break
        data_chips = self.layout.all_data_chips(decoded.line_address)
        self._record_activity(data_chips, start, bus_end)
        if self.storage is not None:
            req.data_words = self.storage.read_line(decoded.line_address).words
        self.read_q.remove(req)
        self.engine.call_at(bus_end, self._complete_read, req)

    def _complete_read(self, req: MemoryRequest) -> None:
        req.complete(self.engine.now)
        self.stats.record_read(req.effective_latency, req.delayed_by_write)
        self._m_reads_completed.inc()
        if req.delayed_by_write:
            self._m_reads_delayed.inc()
        self._m_read_latency.observe(ticks_to_ns(req.effective_latency))
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.REQUEST_COMPLETE,
                tick=self.engine.now,
                channel=self.channel_id,
                req_id=req.req_id,
                kind="read",
                reason=req.service_class.value,
                extra={"latency_ns": ticks_to_ns(req.effective_latency)},
            ))
        if self.read_completion_hook is not None:
            self.read_completion_hook(req)
        self._kick()

    # ==================================================================
    # Write path (baseline: coarse, whole-rank writes, oldest first)
    # ==================================================================
    def select_write_candidate(self, now: int) -> Optional[WriteContext]:
        """Head write the policy chain deliberates over this step.

        Baseline queue discipline: strict FIFO over not-yet-issued writes,
        gated on the coarse chip set being ready now (otherwise a wake-up
        is armed and the step yields).  ``PCMapController`` overrides this
        with oldest-*ready*-first selection over fine-grained chip sets.
        """
        head = next(
            (req for req in self.write_q.pending if req.start_service < 0),
            None,
        )
        if head is None:
            return None
        decoded = head.decoded
        if decoded is None:
            decoded = self.mapper.decode(head.address)
        rank = self.ranks[decoded.rank]
        chips = self._coarse_write_chips(decoded)
        ready = rank.write_ready_time(chips, decoded.bank)
        if ready > now:
            self._note_wake(ready)
            return None
        return WriteContext(now, head, decoded)

    def _coarse_write_chips(self, decoded: DecodedAddress) -> Tuple[int, ...]:
        """All chips a baseline write reserves (every data chip + ECC)."""
        chips = tuple(range(self.geometry.data_chips))
        if self.geometry.has_ecc_chip:
            chips += (self.geometry.ecc_chip_index,)
        return chips

    def _issue_coarse_write(
        self, req: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> None:
        rank = self.ranks[decoded.rank]
        chips = self._coarse_write_chips(decoded)
        start = max(now, rank.write_ready_time(chips, decoded.bank))
        _bus_start, bus_end = self.bus.reserve(BusDirection.WRITE, start)
        # The word-write latency is all-inclusive: the differential
        # write's internal read-compare happens within it (the paper's
        # "write = 2x read" covers the whole operation; cf. Figure 5).
        array_start = bus_end

        if req.dirty_count == 0:
            # Silent store: the chips' read-before-write finds nothing to
            # change; only the compare (an array read) is paid.  The
            # zero-activity window keeps silent write-backs in the IRLP
            # average, matching the paper's 2.37 baseline derivation.
            req.service_class = ServiceClass.SILENT
            end = array_start + self.timing.array_read_ticks
            self._open_window(array_start, end)
        else:
            word_ticks = [
                self._word_write_ticks(req, w) for w in req.dirty_words
            ]
            end = array_start + max(word_ticks)
            self._open_window(array_start, end)
            for word, ticks in zip(req.dirty_words, word_ticks):
                chip = self.layout.data_chip(decoded.line_address, word)
                self._record_activity((chip,), array_start, array_start + ticks)
                self.stats.record_chip_write(chip)
            if self.geometry.has_ecc_chip:
                self.stats.record_chip_write(self.geometry.ecc_chip_index)
        rank.log_label = f"Wr-{req.req_id}"
        rank.reserve_write(chips, decoded.bank, end, decoded.row, start=array_start)
        self._finish_write(req, start, end, decoded)

    def _finish_write(
        self,
        req: MemoryRequest,
        start: int,
        end: int,
        decoded: DecodedAddress,
    ) -> None:
        """Common write issue: storage commit + completion event.

        The write-queue entry is retained until completion — the
        controller must hold the data until the array (and its ECC/PCC
        updates) committed, so queue occupancy reflects in-flight work
        and back-pressure is physical.
        """
        req.start_service = start
        self.write_q.note_issued(req)
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.REQUEST_ISSUE,
                tick=self.engine.now,
                channel=self.channel_id,
                rank=decoded.rank,
                bank=decoded.bank,
                req_id=req.req_id,
                start=start,
                end=end,
                kind="write",
                reason=req.service_class.value,
            ))
        if self.storage is not None and req.new_words is not None:
            self.storage.write_line(
                decoded.line_address, req.new_words, req.dirty_mask
            )
        self.engine.call_at(end, self._complete_write, req)

    def _complete_write(self, req: MemoryRequest) -> None:
        self.write_q.remove(req)
        req.complete(self.engine.now)
        self._m_writes_completed.inc()
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.REQUEST_COMPLETE,
                tick=self.engine.now,
                channel=self.channel_id,
                req_id=req.req_id,
                kind="write",
                reason=req.service_class.value,
            ))
        self._kick()

    # ==================================================================
    # Shared helpers
    # ==================================================================
    def _word_write_ticks(self, req: MemoryRequest, word: int) -> int:
        """Array time to write one dirty word on its chip."""
        timing = self.timing
        if timing.write_mode is WriteLatencyMode.FIXED:
            return timing.array_write_ticks
        # SET_RESET: a word with any 0->1 transition needs the slow SET.
        if req.old_words is not None and req.new_words is not None:
            old, new = req.old_words[word], req.new_words[word]
            needs_set = bool(new & ~old)
        else:
            # Statistical mode: deterministic pseudo-random draw per
            # (line, word) so re-runs are reproducible.
            draw = hash((req.line_address, word)) & 0xFFFF
            needs_set = draw < int(0.7 * 0x10000)
        if needs_set:
            return timing.array_write_set_ticks
        return timing.array_write_reset_ticks

    def _open_window(self, start: int, end: int) -> WriteWindow:
        window = self.irlp.open_window(start, end)
        self._open_windows.append(window)
        return window

    def _prune_windows(self) -> None:
        # Runs every kick; rebuild the list only when something expired.
        windows = self._open_windows
        if not windows:
            return
        now = self.engine.now
        for window in windows:
            if window.end <= now:
                self._open_windows = [w for w in windows if w.end > now]
                return

    def _record_activity(
        self, chips: Tuple[int, ...], start: int, end: int
    ) -> None:
        """Attribute data-chip activity to the open write windows.

        Windows grow (``absorb``) after creation, so no span filtering
        happens here; ``WriteWindow.irlp`` clips intervals to the final
        span, making out-of-window contributions vanish.
        """
        for window in self._open_windows:
            for chip in chips:
                window.add_activity(chip, start, end)
