"""Functional backing store for the PCM array.

In functional mode the simulator keeps real line contents so that the
essential-word detector, the SECDED codec and the PCC reconstruction all
operate on actual bits (tests prove end-to-end data integrity this way).
Only touched lines are materialised; untouched lines read as a
deterministic pseudo-random pattern derived from the line address so that
"cold" reads still produce stable, checkable data.

Timing-only simulations skip this module entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ecc import batch, hamming, parity
from repro.memory.request import WORDS_PER_LINE

_WORD_MASK = (1 << 64) - 1

#: Below this many lines the scalar path wins: numpy's per-call overhead
#: on 8-element arrays is a measured ~4x *regression* per line, while a
#: full batch amortises to ~3x faster — so single-line operations stay
#: scalar and only genuine batches take the vector path.
_BATCH_MIN_LINES = 16


@lru_cache(maxsize=32768)
def _cold_pattern(line_address: int) -> Tuple[int, ...]:
    """Deterministic initial contents of an untouched line.

    A splitmix64-style mix of the line address and word index — cheap,
    stable across runs, and bit-dense enough to exercise the ECC paths.
    Memoised (the pattern is a pure function of the address): sweeps
    re-materialise the same cold lines across systems and seeds.
    """
    words = []
    for i in range(WORDS_PER_LINE):
        z = (line_address * WORDS_PER_LINE + i + 0x9E3779B97F4A7C15) & _WORD_MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _WORD_MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _WORD_MASK
        words.append(z ^ (z >> 31))
    return tuple(words)


@lru_cache(maxsize=32768)
def _cold_line(line_address: int) -> Tuple[Tuple[int, ...], Tuple[int, ...], int]:
    """Fully derived ``(words, checks, pcc)`` template of a cold line.

    Pure function of the address, so the SECDED line encode and the PCC
    parity are computed once per line *process-wide* and shared by every
    :class:`MemoryStorage` instance (the tuples are immutable; stores
    replace whole :class:`StoredLine` records, never mutate them).
    """
    words = _cold_pattern(line_address)
    return words, hamming.encode_line(words), parity.compute_parity(words)


@dataclass
class StoredLine:
    """A materialised line with its code words."""

    words: Tuple[int, ...]
    checks: Tuple[int, ...]  #: SECDED byte per word (the ECC chip's word)
    pcc: int                 #: XOR parity word (the PCC chip's word)


class MemoryStorage:
    """Sparse functional image of the PCM main memory."""

    def __init__(self, keep_pcc: bool = True):
        self.keep_pcc = keep_pcc
        self._lines: Dict[int, StoredLine] = {}
        #: Writes whose per-word comparison found no change (silent words).
        self.silent_word_writes = 0
        #: Total dirty words actually committed to the array.
        self.committed_words = 0

    # ------------------------------------------------------------------
    def _materialise(self, line_address: int) -> StoredLine:
        line = self._lines.get(line_address)
        if line is None:
            words, checks, pcc = _cold_line(line_address)
            line = StoredLine(
                words=words,
                checks=checks,
                pcc=pcc if self.keep_pcc else 0,
            )
            self._lines[line_address] = line
        return line

    # ------------------------------------------------------------------
    def read_line(self, line_address: int) -> StoredLine:
        """Full line as the chips would return it (data + ECC + PCC)."""
        return self._materialise(line_address)

    def read_word(self, line_address: int, word: int) -> int:
        """One 64-bit data word (a single chip's contribution)."""
        if not 0 <= word < WORDS_PER_LINE:
            raise ValueError(f"word index out of range: {word}")
        return self._materialise(line_address).words[word]

    def diff_mask(self, line_address: int, new_words: Tuple[int, ...]) -> int:
        """Dirty-word mask: which words of ``new_words`` differ from memory.

        This is the read-before-write comparison the PCM chips perform
        (paper §IV-A1, approach 3).
        """
        if len(new_words) != WORDS_PER_LINE:
            raise ValueError("expected 8 words")
        old = self._materialise(line_address).words
        mask = 0
        bit = 1
        silent = 0
        for old_word, new_word in zip(old, new_words):
            if old_word != new_word:
                mask |= bit
            else:
                silent += 1
            bit <<= 1
        self.silent_word_writes += silent
        return mask

    def write_line(
        self,
        line_address: int,
        new_words: Tuple[int, ...],
        dirty_mask: Optional[int] = None,
    ) -> int:
        """Commit the dirty words of a write-back; returns the mask used.

        When ``dirty_mask`` is ``None`` it is derived by comparison (a
        differential write).  Clean words are left untouched; the ECC and
        PCC words are updated incrementally for the words that changed.
        """
        old = self._materialise(line_address)
        if dirty_mask is None:
            dirty_mask = self.diff_mask(line_address, new_words)
        mask = dirty_mask & ((1 << WORDS_PER_LINE) - 1)
        if not mask:
            return dirty_mask
        words = list(old.words)
        checks = list(old.checks)
        pcc = old.pcc
        keep_pcc = self.keep_pcc
        committed = 0
        remaining = mask
        while remaining:
            i = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            new_word = new_words[i]
            if keep_pcc:
                pcc ^= words[i] ^ new_word
            words[i] = new_word
            checks[i] = hamming.encode(new_word)
            committed += 1
        self.committed_words += committed
        self._lines[line_address] = StoredLine(tuple(words), tuple(checks), pcc)
        return dirty_mask

    # ------------------------------------------------------------------
    # Batch fast path (repro.ecc.batch; scalar fallback is automatic)
    # ------------------------------------------------------------------
    def prefetch(self, line_addresses: Iterable[int]) -> int:
        """Materialise many cold lines at once; returns how many were new.

        With numpy available the cold patterns, SECDED check bytes and
        PCC parities of every missing line are computed as three array
        operations (:func:`repro.ecc.batch.cold_line_words` +
        :func:`repro.ecc.batch.encode_lines`) — bit-identical to the
        scalar :func:`_cold_line` template, just amortised.  Without
        numpy (or below :data:`_BATCH_MIN_LINES`) it degrades to the
        per-line path, so callers never need to gate on the extra.

        Prefetching is semantically invisible: it inserts exactly the
        records lazy materialisation would, touches no counters, and
        never overwrites a line that already exists.
        """
        lines = self._lines
        missing = [a for a in line_addresses if a not in lines]
        if not missing:
            return 0
        if batch.HAS_NUMPY and len(missing) >= _BATCH_MIN_LINES:
            np = batch.np
            addresses = np.array(missing, dtype=np.uint64)
            words = batch.cold_line_words(addresses)
            checks, pcc = batch.encode_lines(words)
            # .tolist() yields plain Python ints — the stored tuples are
            # indistinguishable from the scalar path's.
            pcc_values = pcc.tolist() if self.keep_pcc else [0] * len(missing)
            for address, w, c, p in zip(
                missing, words.tolist(), checks.tolist(), pcc_values
            ):
                lines[address] = StoredLine(tuple(w), tuple(c), p)
        else:
            for address in missing:
                self._materialise(address)
        return len(missing)

    def diff_masks(
        self,
        line_addresses: Sequence[int],
        new_lines: Sequence[Tuple[int, ...]],
    ) -> List[int]:
        """Batch :meth:`diff_mask`: dirty-word masks for many write-backs.

        Same read-before-write comparison and ``silent_word_writes``
        accounting as the scalar call, vectorised when numpy is present.
        """
        if len(line_addresses) != len(new_lines):
            raise ValueError("line_addresses and new_lines length mismatch")
        if not (
            batch.HAS_NUMPY and len(line_addresses) >= _BATCH_MIN_LINES
        ):
            return [
                self.diff_mask(address, words)
                for address, words in zip(line_addresses, new_lines)
            ]
        self.prefetch(line_addresses)
        np = batch.np
        old = np.array(
            [self._lines[a].words for a in line_addresses], dtype=np.uint64
        )
        new = np.array(new_lines, dtype=np.uint64)
        if new.shape != old.shape:
            raise ValueError("expected 8 words per line")
        changed = old != new
        masks = np.packbits(changed, axis=-1, bitorder="little")[:, 0]
        self.silent_word_writes += int(changed.size - changed.sum())
        return masks.tolist()

    def write_lines(
        self,
        line_addresses: Sequence[int],
        new_lines: Sequence[Tuple[int, ...]],
        dirty_masks: Optional[Sequence[Optional[int]]] = None,
    ) -> List[int]:
        """Batch :meth:`write_line` over many independent write-backs.

        The vector path recomputes check bytes with the batch encoder
        and folds the PCC update (``pcc ^= old ^ new`` over the dirty
        words) as one XOR reduction per line.  Subclasses that override
        :meth:`write_line` (the fault-injecting storage's ledger
        bookkeeping) automatically fall back to the per-line call, so
        the batch API is always safe to use.

        ``line_addresses`` must not repeat within one call on the vector
        path: the commits are computed against a single snapshot.
        """
        if len(line_addresses) != len(new_lines):
            raise ValueError("line_addresses and new_lines length mismatch")
        if dirty_masks is not None and len(dirty_masks) != len(new_lines):
            raise ValueError("dirty_masks length mismatch")
        scalar_override = (
            type(self).write_line is not MemoryStorage.write_line
        )
        mixed_masks = dirty_masks is not None and any(
            m is None for m in dirty_masks
        )
        if (
            scalar_override
            or mixed_masks
            or not batch.HAS_NUMPY
            or len(line_addresses) < _BATCH_MIN_LINES
        ):
            return [
                self.write_line(
                    address,
                    words,
                    None if dirty_masks is None else dirty_masks[i],
                )
                for i, (address, words) in enumerate(
                    zip(line_addresses, new_lines)
                )
            ]
        if len(set(line_addresses)) != len(line_addresses):
            raise ValueError(
                "write_lines: duplicate line addresses in one batch"
            )
        self.prefetch(line_addresses)
        np = batch.np
        lines = self._lines
        old = np.array(
            [lines[a].words for a in line_addresses], dtype=np.uint64
        )
        old_checks = np.array(
            [lines[a].checks for a in line_addresses], dtype=np.uint8
        )
        old_pcc = np.array(
            [lines[a].pcc for a in line_addresses], dtype=np.uint64
        )
        new = np.array(new_lines, dtype=np.uint64)
        if new.shape != old.shape:
            raise ValueError("expected 8 words per line")
        if dirty_masks is None:
            changed = old != new
            masks = np.packbits(changed, axis=-1, bitorder="little")[:, 0]
            self.silent_word_writes += int(changed.size - changed.sum())
            out_masks = masks.tolist()
        else:
            out_masks = [int(m) & 0xFF for m in dirty_masks]
            masks = np.array(out_masks, dtype=np.uint8)
            bits = np.arange(WORDS_PER_LINE, dtype=np.uint8)
            changed = (masks[:, None] >> bits) & np.uint8(1)
            changed = changed.astype(bool)
        committed = int(changed.sum())
        if committed:
            words = np.where(changed, new, old)
            checks = np.where(changed, batch.encode_words(new), old_checks)
            if self.keep_pcc:
                delta = np.bitwise_xor.reduce(
                    np.where(changed, old ^ new, np.uint64(0)), axis=-1
                )
                pcc = (old_pcc ^ delta).tolist()
            else:
                pcc = old_pcc.tolist()
            touched = changed.any(axis=-1).tolist()
            for i, (address, is_dirty) in enumerate(
                zip(line_addresses, touched)
            ):
                if is_dirty:
                    lines[address] = StoredLine(
                        tuple(words[i].tolist()),
                        tuple(checks[i].tolist()),
                        pcc[i],
                    )
            self.committed_words += committed
        # Scalar write_line returns the caller's mask (pre-truncation)
        # when one is supplied; mirror that exactly.
        if dirty_masks is not None:
            return [int(m) for m in dirty_masks]
        return out_masks

    # ------------------------------------------------------------------
    # Fault injection (used to exercise RoW's deferred verification)
    # ------------------------------------------------------------------
    def corrupt_bit(self, line_address: int, word: int, bit: int) -> None:
        """Flip one data bit *without* updating ECC/PCC.

        Models a soft error in the array; a subsequent SECDED decode will
        report a correctable single-bit error.
        """
        if not 0 <= bit < 64:
            raise ValueError(f"bit index out of range: {bit}")
        line = self._materialise(line_address)
        words = list(line.words)
        words[word] ^= 1 << bit
        self._lines[line_address] = StoredLine(tuple(words), line.checks, line.pcc)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of materialised lines."""
        return len(self._lines)

    def __contains__(self, line_address: int) -> bool:
        return line_address in self._lines
