"""Functional backing store for the PCM array.

In functional mode the simulator keeps real line contents so that the
essential-word detector, the SECDED codec and the PCC reconstruction all
operate on actual bits (tests prove end-to-end data integrity this way).
Only touched lines are materialised; untouched lines read as a
deterministic pseudo-random pattern derived from the line address so that
"cold" reads still produce stable, checkable data.

Timing-only simulations skip this module entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.ecc import hamming, parity
from repro.memory.request import WORDS_PER_LINE

_WORD_MASK = (1 << 64) - 1


@lru_cache(maxsize=32768)
def _cold_pattern(line_address: int) -> Tuple[int, ...]:
    """Deterministic initial contents of an untouched line.

    A splitmix64-style mix of the line address and word index — cheap,
    stable across runs, and bit-dense enough to exercise the ECC paths.
    Memoised (the pattern is a pure function of the address): sweeps
    re-materialise the same cold lines across systems and seeds.
    """
    words = []
    for i in range(WORDS_PER_LINE):
        z = (line_address * WORDS_PER_LINE + i + 0x9E3779B97F4A7C15) & _WORD_MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _WORD_MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _WORD_MASK
        words.append(z ^ (z >> 31))
    return tuple(words)


@lru_cache(maxsize=32768)
def _cold_line(line_address: int) -> Tuple[Tuple[int, ...], Tuple[int, ...], int]:
    """Fully derived ``(words, checks, pcc)`` template of a cold line.

    Pure function of the address, so the SECDED line encode and the PCC
    parity are computed once per line *process-wide* and shared by every
    :class:`MemoryStorage` instance (the tuples are immutable; stores
    replace whole :class:`StoredLine` records, never mutate them).
    """
    words = _cold_pattern(line_address)
    return words, hamming.encode_line(words), parity.compute_parity(words)


@dataclass
class StoredLine:
    """A materialised line with its code words."""

    words: Tuple[int, ...]
    checks: Tuple[int, ...]  #: SECDED byte per word (the ECC chip's word)
    pcc: int                 #: XOR parity word (the PCC chip's word)


class MemoryStorage:
    """Sparse functional image of the PCM main memory."""

    def __init__(self, keep_pcc: bool = True):
        self.keep_pcc = keep_pcc
        self._lines: Dict[int, StoredLine] = {}
        #: Writes whose per-word comparison found no change (silent words).
        self.silent_word_writes = 0
        #: Total dirty words actually committed to the array.
        self.committed_words = 0

    # ------------------------------------------------------------------
    def _materialise(self, line_address: int) -> StoredLine:
        line = self._lines.get(line_address)
        if line is None:
            words, checks, pcc = _cold_line(line_address)
            line = StoredLine(
                words=words,
                checks=checks,
                pcc=pcc if self.keep_pcc else 0,
            )
            self._lines[line_address] = line
        return line

    # ------------------------------------------------------------------
    def read_line(self, line_address: int) -> StoredLine:
        """Full line as the chips would return it (data + ECC + PCC)."""
        return self._materialise(line_address)

    def read_word(self, line_address: int, word: int) -> int:
        """One 64-bit data word (a single chip's contribution)."""
        if not 0 <= word < WORDS_PER_LINE:
            raise ValueError(f"word index out of range: {word}")
        return self._materialise(line_address).words[word]

    def diff_mask(self, line_address: int, new_words: Tuple[int, ...]) -> int:
        """Dirty-word mask: which words of ``new_words`` differ from memory.

        This is the read-before-write comparison the PCM chips perform
        (paper §IV-A1, approach 3).
        """
        if len(new_words) != WORDS_PER_LINE:
            raise ValueError("expected 8 words")
        old = self._materialise(line_address).words
        mask = 0
        bit = 1
        silent = 0
        for old_word, new_word in zip(old, new_words):
            if old_word != new_word:
                mask |= bit
            else:
                silent += 1
            bit <<= 1
        self.silent_word_writes += silent
        return mask

    def write_line(
        self,
        line_address: int,
        new_words: Tuple[int, ...],
        dirty_mask: Optional[int] = None,
    ) -> int:
        """Commit the dirty words of a write-back; returns the mask used.

        When ``dirty_mask`` is ``None`` it is derived by comparison (a
        differential write).  Clean words are left untouched; the ECC and
        PCC words are updated incrementally for the words that changed.
        """
        old = self._materialise(line_address)
        if dirty_mask is None:
            dirty_mask = self.diff_mask(line_address, new_words)
        mask = dirty_mask & ((1 << WORDS_PER_LINE) - 1)
        if not mask:
            return dirty_mask
        words = list(old.words)
        checks = list(old.checks)
        pcc = old.pcc
        keep_pcc = self.keep_pcc
        committed = 0
        remaining = mask
        while remaining:
            i = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            new_word = new_words[i]
            if keep_pcc:
                pcc ^= words[i] ^ new_word
            words[i] = new_word
            checks[i] = hamming.encode(new_word)
            committed += 1
        self.committed_words += committed
        self._lines[line_address] = StoredLine(tuple(words), tuple(checks), pcc)
        return dirty_mask

    # ------------------------------------------------------------------
    # Fault injection (used to exercise RoW's deferred verification)
    # ------------------------------------------------------------------
    def corrupt_bit(self, line_address: int, word: int, bit: int) -> None:
        """Flip one data bit *without* updating ECC/PCC.

        Models a soft error in the array; a subsequent SECDED decode will
        report a correctable single-bit error.
        """
        if not 0 <= bit < 64:
            raise ValueError(f"bit index out of range: {bit}")
        line = self._materialise(line_address)
        words = list(line.words)
        words[word] ^= 1 << bit
        self._lines[line_address] = StoredLine(tuple(words), line.checks, line.pcc)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of materialised lines."""
        return len(self._lines)

    def __contains__(self, line_address: int) -> bool:
        return line_address in self._lines
