"""Read and write request queues with watermark-based drain policy.

Memory controllers buffer write-backs and only drain them in bursts: once
the write queue is more than ``drain_high`` full the controller switches
the bus around and services writes until the queue falls below
``drain_low`` (paper §II-B, with alpha = 80 %).  The queue object owns the
thresholds; the controller owns the mode flag.

Queues have finite capacity (Table I: 32-entry write queue, 8-entry read
queue per controller).  ``offer`` rejects requests when full so the CPU
model can apply back-pressure; waiters are notified when space frees up.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.memory.request import MemoryRequest


class RequestQueue:
    """Bounded FIFO-ordered request queue with free-space notification."""

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: List[MemoryRequest] = []
        self._space_waiters: List[Callable[[], None]] = []
        #: Peak occupancy seen (for reporting).
        self.high_water = 0
        #: Bumped on every push/remove; scheduler scan memos sum this
        #: with the rank versions to detect "nothing changed" rescans.
        self.version = 0
        # Optional telemetry instruments (attach_metrics); one is-None
        # check per push/remove when unattached.
        self._depth_gauge = None
        self._push_counter = None
        self._reject_counter = None

    def attach_metrics(self, registry, prefix: str) -> None:
        """Register depth/throughput instruments under ``prefix``.

        ``<prefix>.depth`` (gauge, with max), ``<prefix>.pushed`` and
        ``<prefix>.rejected`` (counters).  Instruments are cached so the
        queue hot path pays attribute access + integer ops only.
        """
        self._depth_gauge = registry.gauge(f"{prefix}.depth")
        self._push_counter = registry.counter(f"{prefix}.pushed")
        self._reject_counter = registry.counter(f"{prefix}.rejected")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1]."""
        return len(self._entries) / self.capacity

    # ------------------------------------------------------------------
    def offer(self, request: MemoryRequest) -> bool:
        """Append ``request`` if space allows; returns success."""
        if self.full:
            if self._reject_counter is not None:
                self._reject_counter.inc()
            return False
        self._entries.append(request)
        self.version += 1
        if len(self._entries) > self.high_water:
            self.high_water = len(self._entries)
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._entries))
            self._push_counter.inc()
        return True

    def push(self, request: MemoryRequest) -> None:
        """Append ``request``; raises if the queue is full."""
        if not self.offer(request):
            raise OverflowError(f"{self.name} full (capacity {self.capacity})")

    def remove(self, request: MemoryRequest) -> None:
        """Remove a specific entry (used when a request is issued)."""
        self._entries.remove(request)
        self.version += 1
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._entries))
        self._notify_space()

    def oldest(self) -> Optional[MemoryRequest]:
        """Oldest entry, or ``None`` when empty."""
        return self._entries[0] if self._entries else None

    def entries(self) -> List[MemoryRequest]:
        """Snapshot of queued entries in arrival order."""
        return list(self._entries)

    # ------------------------------------------------------------------
    def wait_for_space(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire once when space becomes available."""
        self._space_waiters.append(callback)

    def _notify_space(self) -> None:
        if self.full:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for waiter in waiters:
            waiter()


class WriteQueue(RequestQueue):
    """Write queue with the drain watermarks attached."""

    def __init__(
        self,
        capacity: int = 32,
        drain_high: float = 0.8,
        drain_low: float = 0.25,
        name: str = "write-queue",
    ):
        super().__init__(capacity, name)
        if not 0.0 <= drain_low < drain_high <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high <= 1, "
                f"got low={drain_low} high={drain_high}"
            )
        self.drain_high = drain_high
        self.drain_low = drain_low
        # Thresholds as entry counts: the drain check runs every
        # scheduler step and must not divide.
        self._high_count = drain_high * capacity
        self._low_count = drain_low * capacity
        #: Queued/in-flight entries per line address — the read-forwarding
        #: check probes this before scanning for matching writes.
        self._line_counts: Dict[int, int] = {}
        #: FIFO of entries not yet issued (``start_service < 0``).  The
        #: candidate/WoW scans iterate this instead of the full queue so
        #: in-flight entries (held until completion) cost nothing per
        #: scheduler step.  Maintained by ``offer``/``remove`` and by the
        #: issue paths via :meth:`note_issued`.
        self._pending: List[MemoryRequest] = []

    @property
    def above_high_watermark(self) -> bool:
        """True when a drain should start (queue > alpha full)."""
        return len(self._entries) > self._high_count

    @property
    def below_low_watermark(self) -> bool:
        """True when an active drain should stop."""
        return len(self._entries) <= self._low_count

    # ------------------------------------------------------------------
    def offer(self, request: MemoryRequest) -> bool:
        accepted = super().offer(request)
        if accepted:
            counts = self._line_counts
            line = request.line_address
            counts[line] = counts.get(line, 0) + 1
            self._pending.append(request)
        return accepted

    def remove(self, request: MemoryRequest) -> None:
        super().remove(request)
        counts = self._line_counts
        line = request.line_address
        remaining = counts[line] - 1
        if remaining:
            counts[line] = remaining
        else:
            del counts[line]
        # Entries normally leave _pending at issue time; a removal before
        # issue (cancellation, tests) must not leave a stale entry.
        try:
            self._pending.remove(request)
        except ValueError:
            pass

    def note_issued(self, request: MemoryRequest) -> None:
        """Drop ``request`` from the pending FIFO once it starts service.

        Bumps ``version`` so candidate-scan memos keyed on queue state
        are invalidated along with the membership change.  Requests that
        never entered the queue (synthesised code updates) are a no-op.
        """
        try:
            self._pending.remove(request)
        except ValueError:
            return
        self.version += 1

    @property
    def pending(self) -> List[MemoryRequest]:
        """Queued writes that have not started service, oldest first."""
        return self._pending

    def has_line(self, line_address: int) -> bool:
        """True when some queued write targets ``line_address``."""
        return line_address in self._line_counts
