"""Read and write request queues with watermark-based drain policy.

Memory controllers buffer write-backs and only drain them in bursts: once
the write queue is more than ``drain_high`` full the controller switches
the bus around and services writes until the queue falls below
``drain_low`` (paper §II-B, with alpha = 80 %).  The queue object owns the
thresholds; the controller owns the mode flag.

Queues have finite capacity (Table I: 32-entry write queue, 8-entry read
queue per controller).  ``offer`` rejects requests when full so the CPU
model can apply back-pressure; waiters are notified when space frees up.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.memory.request import MemoryRequest


class RequestQueue:
    """Bounded FIFO-ordered request queue with free-space notification."""

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: List[MemoryRequest] = []
        self._space_waiters: List[Callable[[], None]] = []
        #: Peak occupancy seen (for reporting).
        self.high_water = 0
        # Optional telemetry instruments (attach_metrics); one is-None
        # check per push/remove when unattached.
        self._depth_gauge = None
        self._push_counter = None
        self._reject_counter = None

    def attach_metrics(self, registry, prefix: str) -> None:
        """Register depth/throughput instruments under ``prefix``.

        ``<prefix>.depth`` (gauge, with max), ``<prefix>.pushed`` and
        ``<prefix>.rejected`` (counters).  Instruments are cached so the
        queue hot path pays attribute access + integer ops only.
        """
        self._depth_gauge = registry.gauge(f"{prefix}.depth")
        self._push_counter = registry.counter(f"{prefix}.pushed")
        self._reject_counter = registry.counter(f"{prefix}.rejected")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1]."""
        return len(self._entries) / self.capacity

    # ------------------------------------------------------------------
    def offer(self, request: MemoryRequest) -> bool:
        """Append ``request`` if space allows; returns success."""
        if self.full:
            if self._reject_counter is not None:
                self._reject_counter.inc()
            return False
        self._entries.append(request)
        self.high_water = max(self.high_water, len(self._entries))
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._entries))
            self._push_counter.inc()
        return True

    def push(self, request: MemoryRequest) -> None:
        """Append ``request``; raises if the queue is full."""
        if not self.offer(request):
            raise OverflowError(f"{self.name} full (capacity {self.capacity})")

    def remove(self, request: MemoryRequest) -> None:
        """Remove a specific entry (used when a request is issued)."""
        self._entries.remove(request)
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._entries))
        self._notify_space()

    def oldest(self) -> Optional[MemoryRequest]:
        """Oldest entry, or ``None`` when empty."""
        return self._entries[0] if self._entries else None

    def entries(self) -> List[MemoryRequest]:
        """Snapshot of queued entries in arrival order."""
        return list(self._entries)

    # ------------------------------------------------------------------
    def wait_for_space(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire once when space becomes available."""
        self._space_waiters.append(callback)

    def _notify_space(self) -> None:
        if self.full:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for waiter in waiters:
            waiter()


class WriteQueue(RequestQueue):
    """Write queue with the drain watermarks attached."""

    def __init__(
        self,
        capacity: int = 32,
        drain_high: float = 0.8,
        drain_low: float = 0.25,
        name: str = "write-queue",
    ):
        super().__init__(capacity, name)
        if not 0.0 <= drain_low < drain_high <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high <= 1, "
                f"got low={drain_low} high={drain_high}"
            )
        self.drain_high = drain_high
        self.drain_low = drain_low

    @property
    def above_high_watermark(self) -> bool:
        """True when a drain should start (queue > alpha full)."""
        return self.occupancy > self.drain_high

    @property
    def below_low_watermark(self) -> bool:
        """True when an active drain should stop."""
        return self.occupancy <= self.drain_low
