"""PCM/DDR3 timing parameters (paper Table I).

All externally visible durations are expressed in integer engine ticks
(0.1 ns, see :mod:`repro.sim.engine`).  The raw parameters mirror the
JEDEC-style names the paper lists for its 400 MHz DDR3-compatible PCM
DIMMs plus the PCM cell latencies (60 ns read, 50 ns RESET, 120 ns SET).

Two deviations from Table I, both documented in DESIGN.md §5:

* Table I lists ``tRCD = 60 cycles`` (150 ns) while also giving the PCM
  cell read as 60 ns and stating that the main evaluation assumes
  ``write = 2 x read`` with a constant 120 ns write.  The only consistent
  reading is that row activation (the array read) costs 60 ns, so the
  activation latency here is ``array_read_ns`` (default 60 ns).
* ``tRP`` models closing a row buffer.  A PCM row buffer needs no restore
  for clean rows, so the default is a small 4-cycle bookkeeping delay
  rather than Table I's DRAM-style 60 cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.sim.engine import ns_to_ticks


class WriteLatencyMode(enum.Enum):
    """How the per-word PCM array write latency is derived."""

    FIXED = "fixed"          #: every dirty word costs ``array_write_ns``
    SET_RESET = "set_reset"  #: SET-dominated words cost SET, else RESET


@dataclass(frozen=True)
class TimingParams:
    """Timing configuration for one PCM channel.

    Cycle-denominated fields are in memory-bus cycles (400 MHz default);
    nanosecond fields are PCM array latencies.  Use the ``*_ticks``
    properties in simulator code.
    """

    mem_clock_mhz: float = 400.0
    burst_length: int = 8

    # DDR-style bus/command constraints (memory cycles).
    tCL: int = 5      #: column-read command to first data beat
    tWL: int = 4      #: column-write command to first data beat
    tCCD: int = 4     #: minimum gap between bursts on the shared bus
    tWTR: int = 4     #: write -> read bus turnaround
    tRTW: int = 2     #: read -> write bus turnaround
    tRTP: int = 3     #: read to precharge
    tRP: int = 4      #: row-buffer close (see module docstring)
    tRRD: int = 2     #: activate-to-activate gap (same rank)

    # PCM array latencies (nanoseconds).
    array_read_ns: float = 60.0        #: activation / read-before-write
    array_write_ns: float = 120.0      #: dirty-word write (FIXED mode)
    array_write_set_ns: float = 120.0  #: SET (crystallise) word write
    array_write_reset_ns: float = 50.0 #: RESET (amorphise) word write
    write_mode: WriteLatencyMode = WriteLatencyMode.FIXED

    #: Fraction of a full word write that an ECC/PCC word update costs.
    #: Differential writes flip only the check bytes of dirty words (about
    #: 2-3 of the 8 bytes for a typical write-back), so the update is
    #: cheaper than a full 8-byte word write (DESIGN.md §5).
    ecc_update_fraction: float = 0.85

    #: PCMap status-register poll (paper §IV-D1: 2 cycles / 0.8 ns).
    status_poll_ns: float = 0.8

    # ------------------------------------------------------------------
    # Derived quantities (ticks) — precomputed once per instance.  These
    # sit on the simulator's innermost loops (every ready-time query and
    # reservation reads them), so they are plain attributes rather than
    # properties recomputing ``ns_to_ticks`` on each access.  ``replace``
    # variants re-derive them through ``__post_init__``.
    # ------------------------------------------------------------------
    #: Engine ticks per memory-bus cycle.
    cycle_ticks: int = field(init=False, repr=False, compare=False)
    #: Duration of one burst-of-8 data transfer (BL/2 cycles, DDR).
    burst_ticks: int = field(init=False, repr=False, compare=False)
    #: Column-read command to end of data burst.
    read_io_ticks: int = field(init=False, repr=False, compare=False)
    #: Column-write command to end of data burst.
    write_io_ticks: int = field(init=False, repr=False, compare=False)
    #: PCM array read (row activation / read-before-write).
    array_read_ticks: int = field(init=False, repr=False, compare=False)
    #: Dirty-word array write in FIXED mode.
    array_write_ticks: int = field(init=False, repr=False, compare=False)
    array_write_set_ticks: int = field(init=False, repr=False, compare=False)
    array_write_reset_ticks: int = field(init=False, repr=False, compare=False)
    #: ECC/PCC word update duration.
    ecc_update_ticks: int = field(init=False, repr=False, compare=False)
    row_close_ticks: int = field(init=False, repr=False, compare=False)
    status_poll_ticks: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        set_attr = object.__setattr__  # frozen dataclass
        cycle = ns_to_ticks(1000.0 / self.mem_clock_mhz)
        burst = cycle * (self.burst_length // 2)
        array_write = ns_to_ticks(self.array_write_ns)
        set_attr(self, "cycle_ticks", cycle)
        set_attr(self, "burst_ticks", burst)
        set_attr(self, "read_io_ticks", cycle * self.tCL + burst)
        set_attr(self, "write_io_ticks", cycle * self.tWL + burst)
        set_attr(self, "array_read_ticks", ns_to_ticks(self.array_read_ns))
        set_attr(self, "array_write_ticks", array_write)
        set_attr(self, "array_write_set_ticks", ns_to_ticks(self.array_write_set_ns))
        set_attr(self, "array_write_reset_ticks", ns_to_ticks(self.array_write_reset_ns))
        set_attr(
            self,
            "ecc_update_ticks",
            int(round(array_write * self.ecc_update_fraction)),
        )
        set_attr(self, "row_close_ticks", cycle * self.tRP)
        set_attr(self, "status_poll_ticks", ns_to_ticks(self.status_poll_ns))

    def cycles(self, n: int) -> int:
        """Convert a cycle count to ticks."""
        return n * self.cycle_ticks

    @property
    def write_to_read_ratio(self) -> float:
        """Array write : array read latency ratio (2.0 in the paper's base)."""
        return self.array_write_ns / self.array_read_ns

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_write_to_read_ratio(self, ratio: float) -> "TimingParams":
        """Table III sweep: constant 120 ns write, read scaled to match.

        The paper varies the write:read ratio from 2x to 8x by holding the
        write at 120 ns and shrinking the read latency.
        """
        if ratio <= 0:
            raise ValueError(f"ratio must be positive, got {ratio}")
        return replace(self, array_read_ns=self.array_write_ns / ratio)

    def symmetric(self) -> "TimingParams":
        """A symmetric-PCM variant (write latency == read latency).

        Used as the normalisation baseline of Figure 1.
        """
        return replace(
            self,
            array_write_ns=self.array_read_ns,
            array_write_set_ns=self.array_read_ns,
            array_write_reset_ns=self.array_read_ns,
        )


#: Table I defaults: 400 MHz channel, 60 ns read, 120 ns write (2x).
DEFAULT_TIMING = TimingParams()
