"""Main-memory facade: four channels, one controller each (Table I).

Routes requests to the owning channel controller by address, shares one
functional backing store across channels (line contents are global), and
aggregates per-channel statistics for the metrics layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.memory.address import AddressMapper
from repro.memory.controller import MemoryController
from repro.memory.request import MemoryRequest, RequestKind
from repro.memory.storage import MemoryStorage
from repro.sim.engine import Engine
from repro.sim.metrics import MemoryStats
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.core.config import SystemConfig


def make_controller(
    engine: Engine,
    config: "SystemConfig",
    channel_id: int = 0,
    storage: Optional[MemoryStorage] = None,
    seed: int = 1,
    telemetry: Optional[Telemetry] = None,
) -> MemoryController:
    """Build the right controller class for ``config``."""
    if config.is_pcmap:
        # Imported here to avoid a circular import at module load time
        # (core.controller subclasses memory.controller).
        from repro.core.controller import PCMapController

        return PCMapController(
            engine, config, channel_id, storage, seed, telemetry
        )
    if getattr(config, "enable_write_pausing", False):
        from repro.core.pausing import WritePausingController

        return WritePausingController(
            engine, config, channel_id, storage, seed, telemetry
        )
    return MemoryController(engine, config, channel_id, storage, seed, telemetry)


class MainMemory:
    """The full PCM main memory behind the LLC."""

    def __init__(
        self,
        engine: Engine,
        config: "SystemConfig",
        seed: int = 1,
        storage: Optional[MemoryStorage] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.engine = engine
        self.config = config
        #: Shared tracer/registry bundle; every channel controller reports
        #: into it, so its counters aggregate memory-wide.
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.mapper = AddressMapper(config.geometry)
        if storage is None and config.functional:
            storage = MemoryStorage(keep_pcc=config.geometry.has_pcc_chip)
        self.storage = storage
        self.controllers: List[MemoryController] = [
            make_controller(
                engine, config, channel, storage, seed, self.telemetry
            )
            for channel in range(config.geometry.n_channels)
        ]
        #: address -> owning controller; cores probe ``can_accept`` before
        #: every issue, and the footprint's addresses repeat heavily.
        self._route: dict = {}

    # ------------------------------------------------------------------
    def controller_for(self, address: int) -> MemoryController:
        """The channel controller owning ``address``."""
        decoded = self.mapper.decode(address)
        return self.controllers[decoded.channel]

    def can_accept(self, kind: RequestKind, address: int) -> bool:
        # controller_for with a routing memo: cores poll this before
        # every issue, usually for addresses seen before.
        controller = self._route.get(address)
        if controller is None:
            controller = self.controllers[self.mapper.decode(address).channel]
            self._route[address] = controller
        return controller.can_accept(kind)

    def submit(self, request: MemoryRequest) -> None:
        # The routing decode is the same decode the controller would
        # redo; hand it over so submit skips its own mapper lookup.
        decoded = self.mapper.decode(request.address)
        request.decoded = decoded
        self.controllers[decoded.channel].submit(request)

    def wait_for_space(self, kind: RequestKind, address: int, callback) -> None:
        self.controller_for(address).wait_for_space(kind, callback)

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when every channel's queues are empty."""
        return all(controller.idle for controller in self.controllers)

    def aggregate_stats(self) -> MemoryStats:
        """Merged counters across all channels."""
        total = MemoryStats()
        for controller in self.controllers:
            total.merge(controller.stats)
        return total

    def irlp_average(self) -> float:
        """Mean IRLP over all write windows of all channels."""
        values = [
            window.irlp()
            for controller in self.controllers
            for window in controller.irlp.windows
            if window.duration > 0
        ]
        return sum(values) / len(values) if values else 0.0

    def irlp_max(self) -> float:
        values = [
            window.irlp()
            for controller in self.controllers
            for window in controller.irlp.windows
            if window.duration > 0
        ]
        return max(values) if values else 0.0

    def write_service_busy_ticks(self) -> int:
        """Total write-window busy time, summed over channels."""
        return sum(
            controller.irlp.drain_busy_ticks()
            for controller in self.controllers
        )
