"""DDR3-style PCM main-memory substrate (DRAMSim2-equivalent, from scratch)."""

from repro.memory.address import (
    AddressMapper,
    BASELINE_GEOMETRY,
    DecodedAddress,
    MemoryGeometry,
    PCMAP_GEOMETRY,
)
from repro.memory.controller import MemoryController
from repro.memory.memsys import MainMemory, make_controller
from repro.memory.policy import (
    BaseSchedulerPolicy,
    CoarseWritePolicy,
    PolicyChain,
    ReadAdmission,
    SchedulerPolicy,
    WriteContext,
)
from repro.memory.request import (
    LINE_BYTES,
    MemoryRequest,
    RequestKind,
    ServiceClass,
    WORDS_PER_LINE,
    make_read,
    make_write,
)
from repro.memory.power import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.memory.storage import MemoryStorage
from repro.memory.timing import DEFAULT_TIMING, TimingParams, WriteLatencyMode
from repro.memory.wear import StartGapRemapper, WearStats

__all__ = [
    "AddressMapper",
    "BASELINE_GEOMETRY",
    "DecodedAddress",
    "MemoryGeometry",
    "PCMAP_GEOMETRY",
    "MemoryController",
    "MainMemory",
    "make_controller",
    "BaseSchedulerPolicy",
    "CoarseWritePolicy",
    "PolicyChain",
    "ReadAdmission",
    "SchedulerPolicy",
    "WriteContext",
    "LINE_BYTES",
    "MemoryRequest",
    "RequestKind",
    "ServiceClass",
    "WORDS_PER_LINE",
    "make_read",
    "make_write",
    "MemoryStorage",
    "DEFAULT_ENERGY_MODEL",
    "EnergyModel",
    "StartGapRemapper",
    "WearStats",
    "DEFAULT_TIMING",
    "TimingParams",
    "WriteLatencyMode",
]
