"""Write-pausing controller — the prior-art comparator (paper §VII).

Qureshi et al. (HPCA 2010, the paper's [11]) attack the same problem —
reads stuck behind long PCM writes — by letting reads *preempt* an
ongoing write: the write is paused at a quantum boundary, the reads are
served, and the write resumes with a small overhead.  PCMap §VII contrasts
itself with this line of work (overlap instead of preemption), so this
repository implements it as an additional baseline.

Model: a coarse write is served in ``pause_quantum`` slices.  At each
slice boundary, if reads are queued, the write has pause budget left and
writes are not urgent (no active drain), the write yields the rank for
roughly two read services and then resumes with a small overhead.  Under
drain pressure it degenerates to the baseline policy, as in the original
scheme's write-queue threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.address import DecodedAddress
from repro.memory.bus import BusDirection
from repro.memory.controller import MemoryController
from repro.memory.request import MemoryRequest, ServiceClass
from repro.telemetry import EventType, TraceEvent


@dataclass
class _PausedWrite:
    """A write mid-service with array time still owed."""

    request: MemoryRequest
    decoded: DecodedAddress
    remaining_ticks: int
    pauses_used: int
    deadline: int  #: tick by which the write resumes even under reads


class WritePausingController(MemoryController):
    """Baseline + write pausing (no PCMap mechanisms)."""

    #: Array-time slice between pause opportunities (1/4 write latency,
    #: mirroring the iteration granularity of the original scheme).
    PAUSE_QUANTUM_FRACTION = 0.25
    #: Cycles of overhead to re-ramp the write circuitry on resume.
    RESUME_OVERHEAD_CYCLES = 4
    #: Maximum pauses per write (starvation bound).
    MAX_PAUSES = 4

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._paused: Optional[_PausedWrite] = None
        self._write_active = False
        self.pauses_taken = 0
        self._m_write_pauses = self.telemetry.metrics.counter("write.pauses")

    # ------------------------------------------------------------------
    @property
    def _quantum_ticks(self) -> int:
        return max(
            1,
            int(self.timing.array_write_ticks * self.PAUSE_QUANTUM_FRACTION),
        )

    # ------------------------------------------------------------------
    def _schedule_once(self) -> bool:
        """Reads first unless writes are urgent; paused writes resume
        when the read queue drains.

        As in the original scheme, preemption is disallowed while the
        write queue is above its high watermark — otherwise incessant
        reads would starve the writes and back-pressure the cores.
        """
        self._update_drain()
        now = self.engine.now
        writes_urgent = self.drain
        if (
            not writes_urgent
            and not self.read_q.empty
            and self._try_issue_read(now)
        ):
            return True
        if self._paused is not None:
            expired = now >= self._paused.deadline
            if not writes_urgent and not expired and not self.read_q.empty:
                # Reads exist; give them the rank until the pause budget
                # runs out (a pause covers the preempting reads, it is
                # not an open-ended yield).
                self._note_wake(self._paused.deadline)
                return False
            return self._resume_paused(now)
        if not self.write_q.empty and not self._write_active:
            if self._try_issue_write(now):
                return True
        return False

    # ------------------------------------------------------------------
    # Segmented coarse write
    # ------------------------------------------------------------------
    def _issue_coarse_write(
        self, req: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> None:
        rank = self.ranks[decoded.rank]
        chips = self._coarse_write_chips(decoded)
        start = max(now, rank.write_ready_time(chips, decoded.bank))
        _bus_start, bus_end = self.bus.reserve(BusDirection.WRITE, start)
        array_start = bus_end

        if req.dirty_count == 0:
            req.service_class = ServiceClass.SILENT
            end = array_start + self.timing.array_read_ticks
            self._open_window(array_start, end)
            rank.reserve_write(chips, decoded.bank, end, decoded.row, start=array_start)
            self._finish_write(req, start, end, decoded)
            return

        total = max(self._word_write_ticks(req, w) for w in req.dirty_words)
        self._open_window(array_start, array_start + total)
        for word in req.dirty_words:
            chip = self.layout.data_chip(decoded.line_address, word)
            self._record_activity((chip,), array_start, array_start + total)
            self.stats.record_chip_write(chip)
        if self.geometry.has_ecc_chip:
            self.stats.record_chip_write(self.geometry.ecc_chip_index)

        req.start_service = start
        if self.storage is not None and req.new_words is not None:
            self.storage.write_line(
                decoded.line_address, req.new_words, req.dirty_mask
            )
        self._write_active = True
        self._run_segment(req, decoded, array_start, total, pauses_used=0)

    def _run_segment(
        self,
        req: MemoryRequest,
        decoded: DecodedAddress,
        seg_start: int,
        remaining: int,
        pauses_used: int,
    ) -> None:
        rank = self.ranks[decoded.rank]
        chips = self._coarse_write_chips(decoded)
        quantum = min(self._quantum_ticks, remaining)
        end = seg_start + quantum
        rank.log_label = f"Wr-{req.req_id}"
        rank.reserve_write(chips, decoded.bank, end, decoded.row, start=seg_start)

        def at_boundary() -> None:
            left = remaining - quantum
            if left <= 0:
                self._write_active = False
                self._complete_write(req)
                return
            if (
                not self.read_q.empty
                and pauses_used < self.MAX_PAUSES
                and not self.drain
            ):
                # Yield the rank for roughly two read services.
                pause_budget = 2 * (
                    self.timing.array_read_ticks + self.timing.read_io_ticks
                )
                self._paused = _PausedWrite(
                    req, decoded, left, pauses_used + 1, end + pause_budget
                )
                self.pauses_taken += 1
                self._m_write_pauses.inc()
                if self.tracer.enabled:
                    self.tracer.emit(TraceEvent(
                        EventType.WRITE_PAUSE,
                        tick=self.engine.now,
                        channel=self.channel_id,
                        rank=decoded.rank,
                        req_id=req.req_id,
                        end=end + pause_budget,
                        extra={"remaining_ticks": left,
                               "pauses_used": pauses_used + 1},
                    ))
                self.engine.schedule_at(end + pause_budget, self._kick)
                self._kick()
                return
            self._run_segment(req, decoded, end, left, pauses_used)

        self.engine.schedule_at(end, at_boundary)

    def _resume_paused(self, now: int) -> bool:
        paused = self._paused
        assert paused is not None
        rank = self.ranks[paused.decoded.rank]
        chips = self._coarse_write_chips(paused.decoded)
        ready = rank.write_ready_time(chips, paused.decoded.bank)
        if ready > now:
            self._note_wake(ready)
            return False
        self._paused = None
        resume_at = now + self.timing.cycles(self.RESUME_OVERHEAD_CYCLES)
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.WRITE_RESUME,
                tick=now,
                channel=self.channel_id,
                rank=paused.decoded.rank,
                req_id=paused.request.req_id,
                start=resume_at,
                extra={"remaining_ticks": paused.remaining_ticks},
            ))
        self._run_segment(
            paused.request,
            paused.decoded,
            resume_at,
            paused.remaining_ticks,
            paused.pauses_used,
        )
        return True
