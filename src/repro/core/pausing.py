"""Write pausing — the prior-art comparator (paper §VII).

Qureshi et al. (HPCA 2010, the paper's [11]) attack the same problem —
reads stuck behind long PCM writes — by letting reads *preempt* an
ongoing write: the write is paused at a quantum boundary, the reads are
served, and the write resumes with a small overhead.  PCMap §VII contrasts
itself with this line of work (overlap instead of preemption), so this
repository implements it as an additional baseline.

Model: a coarse write is served in ``pause_quantum`` slices.  At each
slice boundary, if reads are queued, the write has pause budget left and
writes are not urgent (no active drain), the write yields the rank for
roughly two read services and then resumes with a small overhead.  Under
drain pressure it degenerates to the baseline policy, as in the original
scheme's write-queue threshold.

The mechanism is a :class:`~repro.memory.policy.SchedulerPolicy`:
``pre_select`` owns the paused/active gating (it must run before a head
candidate is even picked) and ``select_write`` issues the segmented
coarse write.  Its chain discipline flags are both False — the whole
point of pausing is issuing and resuming writes *under* pending reads,
and it never flags queued reads as drain-delayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.address import DecodedAddress
from repro.memory.bus import BusDirection
from repro.memory.controller import MemoryController
from repro.memory.policy import (
    BaseSchedulerPolicy,
    PolicyChain,
    WriteContext,
)
from repro.memory.request import MemoryRequest, ServiceClass
from repro.telemetry import EventType, TraceEvent


@dataclass
class _PausedWrite:
    """A write mid-service with array time still owed."""

    request: MemoryRequest
    decoded: DecodedAddress
    remaining_ticks: int
    pauses_used: int
    deadline: int  #: tick by which the write resumes even under reads


class WritePausingPolicy(BaseSchedulerPolicy):
    """Baseline coarse writes + read-preempts-write (no PCMap mechanisms)."""

    name = "write-pausing"
    reads_block_writes = False
    mark_reads_delayed_in_drain = False

    #: Array-time slice between pause opportunities (1/4 write latency,
    #: mirroring the iteration granularity of the original scheme).
    PAUSE_QUANTUM_FRACTION = 0.25
    #: Cycles of overhead to re-ramp the write circuitry on resume.
    RESUME_OVERHEAD_CYCLES = 4
    #: Maximum pauses per write (starvation bound).
    MAX_PAUSES = 4

    def __init__(self) -> None:
        super().__init__()
        self._paused: Optional[_PausedWrite] = None
        self._write_active = False
        self.pauses_taken = 0

    def on_bind(self) -> None:
        c = self.controller
        assert c is not None
        self._m_write_pauses = c.telemetry.metrics.counter("write.pauses")

    # ------------------------------------------------------------------
    @property
    def _quantum_ticks(self) -> int:
        c = self.controller
        assert c is not None
        return max(
            1,
            int(c.timing.array_write_ticks * self.PAUSE_QUANTUM_FRACTION),
        )

    # ------------------------------------------------------------------
    # The write step
    # ------------------------------------------------------------------
    def pre_select(self, now: int) -> Optional[bool]:
        """Resume/park paused writes and gate on the active one.

        As in the original scheme, preemption is disallowed while the
        write queue is above its high watermark — otherwise incessant
        reads would starve the writes and back-pressure the cores.
        """
        c = self.controller
        assert c is not None
        if self._paused is not None:
            expired = now >= self._paused.deadline
            if not c.drain and not expired and not c.read_q.empty:
                # Reads exist; give them the rank until the pause budget
                # runs out (a pause covers the preempting reads, it is
                # not an open-ended yield).
                c._note_wake(self._paused.deadline)
                return False
            return self._resume_paused(now)
        if self._write_active:
            return False  # one segmented write in service at a time
        return None

    def select_write(self, ctx: WriteContext) -> bool:
        self._issue_segmented(ctx.head, ctx.decoded, ctx.now)
        return True

    # ------------------------------------------------------------------
    # Segmented coarse write
    # ------------------------------------------------------------------
    def _issue_segmented(
        self, req: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> None:
        c = self.controller
        assert c is not None
        rank = c.ranks[decoded.rank]
        chips = c._coarse_write_chips(decoded)
        start = max(now, rank.write_ready_time(chips, decoded.bank))
        _bus_start, bus_end = c.bus.reserve(BusDirection.WRITE, start)
        array_start = bus_end

        if req.dirty_count == 0:
            req.service_class = ServiceClass.SILENT
            end = array_start + c.timing.array_read_ticks
            c._open_window(array_start, end)
            rank.reserve_write(chips, decoded.bank, end, decoded.row, start=array_start)
            c._finish_write(req, start, end, decoded)
            return

        total = max(c._word_write_ticks(req, w) for w in req.dirty_words)
        c._open_window(array_start, array_start + total)
        for word in req.dirty_words:
            chip = c.layout.data_chip(decoded.line_address, word)
            c._record_activity((chip,), array_start, array_start + total)
            c.stats.record_chip_write(chip)
        if c.geometry.has_ecc_chip:
            c.stats.record_chip_write(c.geometry.ecc_chip_index)

        req.start_service = start
        c.write_q.note_issued(req)
        if c.storage is not None and req.new_words is not None:
            c.storage.write_line(
                decoded.line_address, req.new_words, req.dirty_mask
            )
        self._write_active = True
        self._run_segment(req, decoded, array_start, total, pauses_used=0)

    def _run_segment(
        self,
        req: MemoryRequest,
        decoded: DecodedAddress,
        seg_start: int,
        remaining: int,
        pauses_used: int,
    ) -> None:
        c = self.controller
        assert c is not None
        rank = c.ranks[decoded.rank]
        chips = c._coarse_write_chips(decoded)
        quantum = min(self._quantum_ticks, remaining)
        end = seg_start + quantum
        rank.log_label = f"Wr-{req.req_id}"
        rank.reserve_write(chips, decoded.bank, end, decoded.row, start=seg_start)

        def at_boundary() -> None:
            left = remaining - quantum
            if left <= 0:
                self._write_active = False
                c._complete_write(req)
                return
            if (
                not c.read_q.empty
                and pauses_used < self.MAX_PAUSES
                and not c.drain
            ):
                # Yield the rank for roughly two read services.
                pause_budget = 2 * (
                    c.timing.array_read_ticks + c.timing.read_io_ticks
                )
                self._paused = _PausedWrite(
                    req, decoded, left, pauses_used + 1, end + pause_budget
                )
                self.pauses_taken += 1
                self._m_write_pauses.inc()
                if c.tracer.enabled:
                    c.tracer.emit(TraceEvent(
                        EventType.WRITE_PAUSE,
                        tick=c.engine.now,
                        channel=c.channel_id,
                        rank=decoded.rank,
                        req_id=req.req_id,
                        end=end + pause_budget,
                        extra={"remaining_ticks": left,
                               "pauses_used": pauses_used + 1},
                    ))
                c.engine.call_at(end + pause_budget, c._kick)
                c._kick()
                return
            self._run_segment(req, decoded, end, left, pauses_used)

        c.engine.call_at(end, at_boundary)

    def _resume_paused(self, now: int) -> bool:
        c = self.controller
        assert c is not None
        paused = self._paused
        assert paused is not None
        rank = c.ranks[paused.decoded.rank]
        chips = c._coarse_write_chips(paused.decoded)
        ready = rank.write_ready_time(chips, paused.decoded.bank)
        if ready > now:
            c._note_wake(ready)
            return False
        self._paused = None
        resume_at = now + c.timing.cycles(self.RESUME_OVERHEAD_CYCLES)
        if c.tracer.enabled:
            c.tracer.emit(TraceEvent(
                EventType.WRITE_RESUME,
                tick=now,
                channel=c.channel_id,
                rank=paused.decoded.rank,
                req_id=paused.request.req_id,
                start=resume_at,
                extra={"remaining_ticks": paused.remaining_ticks},
            ))
        self._run_segment(
            paused.request,
            paused.decoded,
            resume_at,
            paused.remaining_ticks,
            paused.pauses_used,
        )
        return True


class WritePausingController(MemoryController):
    """Thin shell kept for construction routing and test introspection.

    All behaviour lives in :class:`WritePausingPolicy`; this class only
    validates the config routes a pausing chain and re-exports the
    policy's knobs/counters under their historical names.
    """

    PAUSE_QUANTUM_FRACTION = WritePausingPolicy.PAUSE_QUANTUM_FRACTION
    RESUME_OVERHEAD_CYCLES = WritePausingPolicy.RESUME_OVERHEAD_CYCLES
    MAX_PAUSES = WritePausingPolicy.MAX_PAUSES

    def _build_policy_chain(self) -> PolicyChain:
        chain = super()._build_policy_chain()
        if chain.find(WritePausingPolicy) is None:
            raise ValueError(
                "WritePausingController requires enable_write_pausing"
            )
        return chain

    @property
    def pausing(self) -> WritePausingPolicy:
        policy = self.policies.find(WritePausingPolicy)
        assert isinstance(policy, WritePausingPolicy)
        return policy

    @property
    def pauses_taken(self) -> int:
        return self.pausing.pauses_taken
