"""PCMap: the paper's contribution — RoW, WoW, rotation, fine-grained writes."""

from repro.core.config import SystemConfig, pcmap_config
from repro.core.controller import PCMapController
from repro.core.fine import FineWriteEngine, FineWritePolicy, SilentWritePolicy
from repro.core.palp import PartitionParallelWritePolicy
from repro.core.pausing import WritePausingController, WritePausingPolicy
from repro.core.row import ReadOverWritePolicy
from repro.core.wow import WriteOverWritePolicy
from repro.core.essential import EssentialWordDetector, EssentialWordStats, diff_words
from repro.core.rotation import (
    DataRotatedLayout,
    FixedLayout,
    FullyRotatedLayout,
    RankLayout,
    make_layout,
)
from repro.core.status import DimmStatusRegister, StatusSnapshot
from repro.core.systems import (
    COMPARATOR_SYSTEM_NAMES,
    PCMAP_SYSTEM_NAMES,
    SYSTEM_NAMES,
    all_systems,
    build_policies,
    make_system,
)

__all__ = [
    "SystemConfig",
    "pcmap_config",
    "PCMapController",
    "FineWriteEngine",
    "FineWritePolicy",
    "SilentWritePolicy",
    "PartitionParallelWritePolicy",
    "WritePausingController",
    "WritePausingPolicy",
    "ReadOverWritePolicy",
    "WriteOverWritePolicy",
    "EssentialWordDetector",
    "EssentialWordStats",
    "diff_words",
    "DataRotatedLayout",
    "FixedLayout",
    "FullyRotatedLayout",
    "RankLayout",
    "make_layout",
    "DimmStatusRegister",
    "StatusSnapshot",
    "COMPARATOR_SYSTEM_NAMES",
    "PCMAP_SYSTEM_NAMES",
    "SYSTEM_NAMES",
    "all_systems",
    "build_policies",
    "make_system",
]
