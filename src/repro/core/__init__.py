"""PCMap: the paper's contribution — RoW, WoW, rotation, fine-grained writes."""

from repro.core.config import SystemConfig, pcmap_config
from repro.core.controller import PCMapController
from repro.core.pausing import WritePausingController
from repro.core.essential import EssentialWordDetector, EssentialWordStats, diff_words
from repro.core.rotation import (
    DataRotatedLayout,
    FixedLayout,
    FullyRotatedLayout,
    RankLayout,
    make_layout,
)
from repro.core.status import DimmStatusRegister, StatusSnapshot
from repro.core.systems import (
    PCMAP_SYSTEM_NAMES,
    SYSTEM_NAMES,
    all_systems,
    make_system,
)

__all__ = [
    "SystemConfig",
    "pcmap_config",
    "PCMapController",
    "WritePausingController",
    "EssentialWordDetector",
    "EssentialWordStats",
    "diff_words",
    "DataRotatedLayout",
    "FixedLayout",
    "FullyRotatedLayout",
    "RankLayout",
    "make_layout",
    "DimmStatusRegister",
    "StatusSnapshot",
    "PCMAP_SYSTEM_NAMES",
    "SYSTEM_NAMES",
    "all_systems",
    "make_system",
]
