"""RoW — read-over-write scheduling policy (paper §IV-B).

:class:`ReadOverWritePolicy` owns the whole RoW pipeline:

* the **usefulness pre-check** (would any queued read fit the window?);
* the decline bookkeeping mirroring the §IV-D2 predicate's short-circuit
  order, so traces explain every decision;
* the **two-step fine write** (data+ECC now, PCC deferred) that opens the
  window;
* **overlap-read admission** — each queued read either fits without
  touching a write-busy chip (a plain overlapped read) or has exactly one
  data word blocked, reconstructed from the other seven plus the PCC
  parity word (§IV-B2);
* the **deferred SECDED verify** and rollback signalling for
  reconstructed reads (§IV-B3), broadcast to the chain via
  ``on_verify_result``.

Reads arriving while a window is open are admitted immediately through
the ``on_read_enqueued`` hook, which is how the controller-level
``submit`` override of the old monolithic scheduler worked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ecc import hamming, parity
from repro.memory.address import DecodedAddress
from repro.memory.bus import BusDirection
from repro.memory.policy import (
    BaseSchedulerPolicy,
    ReadAdmission,
    WriteContext,
)
from repro.memory.request import (
    MemoryRequest,
    ServiceClass,
    WORDS_PER_LINE,
)
from repro.sim.metrics import WriteWindow
from repro.telemetry import EventType, TraceEvent


class ReadOverWritePolicy(BaseSchedulerPolicy):
    """Open RoW windows over single-essential-word writes and fill them
    with overlapped (possibly reconstructed) reads."""

    name = "row-window"

    def on_bind(self) -> None:
        c = self.controller
        assert c is not None
        metrics = c.telemetry.metrics
        self._m_attempts = metrics.counter("row.attempts")
        self._m_windows = metrics.counter("row.windows")
        self._m_reads = metrics.counter("row.reads")
        self._m_overlap = metrics.counter("row.overlap_reads")
        self._m_rollbacks = metrics.counter("rollbacks")
        self._m_rollbacks_corrupted = metrics.counter("rollbacks.corrupted")
        self._m_verifications = metrics.counter("verifications")
        self._m_declined: Dict[str, object] = {}  # reason -> cached Counter
        # The currently open RoW window per rank (window, reads issued);
        # reads arriving while it is open are overlapped immediately.
        self._active_window: List[Optional[WriteWindow]] = [
            None
        ] * len(c.ranks)
        self._active_reads = [0] * len(c.ranks)

    # ==================================================================
    # Write step (§IV-D2: RoW first, when it would serve a read)
    # ==================================================================
    def select_write(self, ctx: WriteContext) -> bool:
        c = self.controller
        assert c is not None
        head, decoded, now = ctx.head, ctx.decoded, ctx.now
        # The decline reason mirrors the short-circuit order of the
        # scheduling predicate (§IV-D2) so traces explain decisions.
        if head.dirty_count > c.config.row_max_essential_words:
            decline = "too-many-essential-words"
        elif c.read_q.empty:
            decline = "no-queued-reads"
        elif c.config.enable_wow and c.write_q.above_high_watermark:
            # Under critical write pressure a WoW group moves more
            # data than a RoW window; prefer RoW once off-peak.
            decline = "write-pressure"
        elif not self.window_useful(head, decoded, now):
            decline = "no-overlappable-read"
        else:
            decline = ""
        self._m_attempts.inc()
        if c.tracer.enabled:
            c.tracer.emit(TraceEvent(
                EventType.ROW_ATTEMPT,
                tick=now,
                channel=c.channel_id,
                rank=decoded.rank,
                req_id=head.req_id,
            ))
        if decline:
            self._declined(decline)
            if c.tracer.enabled:
                c.tracer.emit(TraceEvent(
                    EventType.ROW_DECLINE,
                    tick=now,
                    channel=c.channel_id,
                    rank=decoded.rank,
                    req_id=head.req_id,
                    reason=decline,
                ))
            return False  # fall through to WoW / plain fine write
        data_end = self._issue_window(head, decoded, now)
        # The engine frees at the *data* end: the PCC step runs on the
        # PCC chip only, so the next write's chips proceed concurrently.
        c.fine.hold(decoded, data_end)
        return True

    def _declined(self, reason: str) -> None:
        """Bump the per-reason decline counter (cached per reason)."""
        c = self.controller
        assert c is not None
        counter = self._m_declined.get(reason)
        if counter is None:
            counter = c.telemetry.metrics.counter(f"row.declined.{reason}")
            self._m_declined[reason] = counter
        counter.inc()

    def window_useful(
        self, head: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> bool:
        """Would opening a RoW window for ``head`` serve any queued read?

        Cheap pre-check so a WoW slot is not wasted on a window no read
        can join (e.g. every queued read needs two busy chips).
        """
        c = self.controller
        assert c is not None
        rank = c.ranks[decoded.rank]
        head_chips = set(
            c.layout.dirty_chips(decoded.line_address, head.dirty_mask)
        )
        busy = set(rank.busy_chips_at(now)) | head_chips
        for req in c.read_q:
            read_decoded = req.decoded
            if read_decoded is None:
                read_decoded = c.mapper.decode(req.address)
            if read_decoded.rank != decoded.rank:
                continue
            line = read_decoded.line_address
            word_chips = c.layout.all_data_chips(line)
            blocked = [chip for chip in word_chips if chip in busy]
            pcc_chip = c.layout.pcc_chip(line)
            ecc_chip = c.layout.ecc_chip(line)
            if not blocked and ecc_chip not in busy:
                return True  # a plain overlapped read fits
            if (
                len(blocked) == 1
                and pcc_chip is not None
                and pcc_chip not in busy
            ):
                return True  # reconstruction fits
        return False

    def _issue_window(
        self, head: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> int:
        """Two-step fine write plus overlapped reads; returns data end."""
        c = self.controller
        assert c is not None and self.chain is not None
        window = c._open_window(-1, -1)
        _start, data_end, _service_end = c.fine.issue_fine_write(
            head, decoded, now, window=window, defer_pcc=True
        )
        self._m_windows.inc()
        if c.tracer.enabled:
            c.tracer.emit(TraceEvent(
                EventType.ROW_SERVE,
                tick=now,
                channel=c.channel_id,
                rank=decoded.rank,
                req_id=head.req_id,
                start=window.start,
                end=window.end,
            ))
        self._active_window[decoded.rank] = window
        self._active_reads[decoded.rank] = 0
        self.chain.on_window_open(window, decoded.rank)
        self._overlap_reads(decoded.rank, window, now)
        return data_end

    # ==================================================================
    # Read intake: reads arriving mid-window join the open RoW window
    # ==================================================================
    def on_read_enqueued(self, request: MemoryRequest) -> None:
        c = self.controller
        assert c is not None and self.chain is not None
        if request not in c.read_q:
            return  # already issued or forwarded by the base path
        decoded = request.decoded
        if decoded is None:
            decoded = c.mapper.decode(request.address)
        window = self._active_window[decoded.rank]
        if window is None or window.end <= c.engine.now:
            if window is not None:
                self.chain.on_window_close(window, decoded.rank)
            self._active_window[decoded.rank] = None
            return
        self._overlap_reads(decoded.rank, window, c.engine.now)

    # ==================================================================
    # Overlap-read admission (§IV-B2)
    # ==================================================================
    def admit_overlap_read(
        self, window: WriteWindow, request: MemoryRequest, now: int
    ) -> Optional[ReadAdmission]:
        """Plan serving ``request`` inside ``window``, or None to refuse.

        Overlapped reads must *finish* inside the window (plus the PCC
        step-2 tail, when the data chips are free anyway) so their own
        tails never stall the next write service.
        """
        c = self.controller
        assert c is not None
        decoded = request.decoded
        if decoded is None:
            decoded = c.mapper.decode(request.address)
        rank = c.ranks[decoded.rank]
        line = decoded.line_address
        word_chips = c.layout.all_data_chips(line)
        ecc_chip = c.layout.ecc_chip(line)
        pcc_chip = c.layout.pcc_chip(line)

        read_cost = (
            rank.activation_ticks(word_chips, decoded.bank, decoded.row)
            + c.timing.read_io_ticks
        )
        deadline = window.end + c.timing.ecc_update_ticks

        # Option A: wait for every chip (leftover ECC/PCC updates from
        # earlier windows clear quickly) and read normally.
        normal_chips = word_chips + (ecc_chip,)
        normal_start = max(
            now, rank.read_ready_time(normal_chips, decoded.bank)
        )
        # Option B: skip the single most-contended data chip (the one
        # the ongoing write holds) and reconstruct its word from PCC.
        recon_start: Optional[int] = None
        recon_chips: Tuple[int, ...] = ()
        missing: Optional[int] = None
        if pcc_chip is not None:
            missing = max(
                range(WORDS_PER_LINE),
                key=lambda w: rank.chips[word_chips[w]].write_busy_until,
            )
            recon_chips = tuple(
                chip for w, chip in enumerate(word_chips) if w != missing
            ) + (pcc_chip,)
            candidate = max(
                now, rank.read_ready_time(recon_chips, decoded.bank)
            )
            # Reconstruction only pays off while the skipped chip is
            # actually still write-busy at that start time.
            if rank.chips[word_chips[missing]].write_busy_until > candidate:
                recon_start = candidate

        if recon_start is not None and recon_start < normal_start:
            if recon_start + read_cost > deadline:
                return None  # a late reconstruction helps nobody
            return ReadAdmission(chips=recon_chips, missing_word=missing)
        if normal_start + read_cost <= deadline:
            return ReadAdmission(chips=normal_chips)
        return None

    def _overlap_reads(
        self, rank_index: int, window: WriteWindow, now: int
    ) -> None:
        """Serve reads concurrently with the open write window.

        Walks the read queue oldest-first, asking the chain to admit each
        read (the chain so e.g. an instrumentation policy can observe or
        veto admissions; this policy provides the plan).
        """
        c = self.controller
        assert c is not None and self.chain is not None
        issued = 0
        for req in list(c.read_q):
            if (
                self._active_reads[rank_index] + issued
                >= c.config.row_max_overlapped_reads
            ):
                break
            if req not in c.read_q:
                # Issuing a read frees queue space, which can re-enter
                # this method through the CPU's back-pressure waiter; the
                # nested call may have issued entries of our snapshot.
                continue
            decoded = req.decoded
            if decoded is None:
                decoded = c.mapper.decode(req.address)
            if decoded.rank != rank_index:
                continue
            plan = self.chain.admit_overlap_read(window, req, now)
            if plan is None:
                continue
            self._issue_overlap_read(
                req, decoded, plan.chips, plan.missing_word, now
            )
            if plan.missing_word is not None:
                c.stats.row_reads += 1
                self._m_reads.inc()
            else:
                c.stats.row_normal_overlap_reads += 1
                self._m_overlap.inc()
            issued += 1
        self._active_reads[rank_index] += issued

    def _issue_overlap_read(
        self,
        req: MemoryRequest,
        decoded: DecodedAddress,
        chips: Tuple[int, ...],
        missing_word: Optional[int],
        now: int,
    ) -> None:
        """Issue a read over the partial buses, reconstructing if needed."""
        c = self.controller
        assert c is not None
        rank = c.ranks[decoded.rank]
        line, bank, row = decoded.line_address, decoded.bank, decoded.row
        start = max(now, rank.read_ready_time(chips, bank))
        activation = rank.activation_ticks(chips, bank, row)
        cas_ready = start + activation + c.timing.cycles(c.timing.tCL)
        end = cas_ready
        for chip in chips:
            _xs, xfer_end = c.bus.reserve_partial(
                chip, BusDirection.READ, cas_ready
            )
            end = max(end, xfer_end)
        rank.log_label = f"Rd-{req.req_id}"
        rank.reserve_read(chips, bank, end, row, start=start)

        req.start_service = start
        req.delayed_by_write = True  # it arrived while a write was draining
        if c.tracer.enabled:
            c.tracer.emit(TraceEvent(
                EventType.REQUEST_ISSUE,
                tick=now,
                channel=c.channel_id,
                rank=decoded.rank,
                bank=bank,
                req_id=req.req_id,
                start=start,
                end=end,
                kind="read",
                reason=(
                    "row-overlap" if missing_word is None
                    else "row-reconstruction"
                ),
            ))
        self._record_data_read_activity(decoded, missing_word, start, end)

        if missing_word is None:
            req.service_class = ServiceClass.NORMAL
            if c.storage is not None:
                req.data_words = c.storage.read_line(line).words
            c.read_q.remove(req)
            c.engine.call_at(end, c._complete_read, req)
            return

        req.service_class = ServiceClass.ROW_OVERLAP
        if c.storage is not None:
            stored = c.storage.read_line(line)
            partial = [
                None if w == missing_word else stored.words[w]
                for w in range(WORDS_PER_LINE)
            ]
            req.data_words = parity.reconstruct_word(partial, stored.pcc)
        c.read_q.remove(req)
        c.engine.call_at(end, c._complete_read, req)
        self._schedule_verify(req, decoded, missing_word, end)

    def _record_data_read_activity(
        self,
        decoded: DecodedAddress,
        missing_word: Optional[int],
        start: int,
        end: int,
    ) -> None:
        """IRLP accounting: the data chips a read keeps busy."""
        c = self.controller
        assert c is not None
        chips = tuple(
            chip
            for w, chip in enumerate(
                c.layout.all_data_chips(decoded.line_address)
            )
            if w != missing_word
        )
        c._record_activity(chips, start, end)

    # ------------------------------------------------------------------
    # Deferred verification and rollback (§IV-B3)
    # ------------------------------------------------------------------
    def _schedule_verify(
        self,
        req: MemoryRequest,
        decoded: DecodedAddress,
        missing_word: int,
        read_end: int,
    ) -> None:
        """Arrange the SECDED check once the busy chip frees up."""
        c = self.controller
        assert c is not None
        rank = c.ranks[decoded.rank]
        chip = c.layout.data_chip(decoded.line_address, missing_word)
        ecc_chip = c.layout.ecc_chip(decoded.line_address)

        def _run_verify() -> None:
            now = c.engine.now
            chips = (chip, ecc_chip)
            start = max(now, rank.read_ready_time(chips, decoded.bank))
            activation = rank.activation_ticks(
                chips, decoded.bank, decoded.row
            )
            end = start + activation + c.timing.read_io_ticks
            rank.log_label = f"Vfy-{req.req_id}"
            rank.reserve_read(chips, decoded.bank, end, decoded.row, start=start)
            c.engine.call_at(
                end, self._finish_verify, req, decoded, missing_word
            )

        wake_at = max(
            read_end, rank.chips[chip].write_busy_until, c.engine.now
        )
        c.engine.call_at(wake_at, _run_verify)

    def _finish_verify(
        self, req: MemoryRequest, decoded: DecodedAddress, missing_word: int
    ) -> None:
        """Complete the deferred check; decide whether a rollback is due."""
        c = self.controller
        assert c is not None and self.chain is not None
        now = c.engine.now
        req.verify_completion = now
        c.stats.verify_count += 1
        self._m_verifications.inc()

        corrupted = False
        if c.storage is not None and req.data_words is not None:
            stored = c.storage.read_line(decoded.line_address)
            result = hamming.decode(
                req.data_words[missing_word], stored.checks[missing_word]
            )
            corrupted = (
                not result.ok or result.data != stored.words[missing_word]
                or req.data_words[missing_word] != stored.words[missing_word]
            )
        # Statistical model: the CPU consumed the value before this check
        # with the workload's probability (Table IV's rollback rates).
        consumed_early = c.rng.random() < c.config.row_rollback_rate
        rollback = corrupted or consumed_early
        if rollback:
            req.rolled_back = True
            c.stats.rollbacks += 1
            self._m_rollbacks.inc()
            if corrupted:
                # Real data corruption caught by the deferred verify, as
                # opposed to the statistical consumed-early model.
                self._m_rollbacks_corrupted.inc()
            if c.tracer.enabled:
                c.tracer.emit(TraceEvent(
                    EventType.ROLLBACK,
                    tick=now,
                    channel=c.channel_id,
                    rank=decoded.rank,
                    req_id=req.req_id,
                    reason="corrupted" if corrupted else "consumed-early",
                ))
        self.chain.on_verify_result(req, rollback)
        if req.on_verify is not None:
            req.on_verify(req, rollback)
        c._kick()
