"""PALP-style comparator: partition-parallel write issue (related work).

Song et al., "Enabling and Exploiting Partition-Level Parallelism in
Phase Change Memories", observe that a PCM chip's write-power budget is
provisioned per *partition* (bank), not per rank — so writes to distinct
banks can be in array service simultaneously.  ``palp-lite`` models the
scheduling consequence inside this simulator's resource model: the
write-engine token is scoped per (rank, bank) instead of per rank
(``SystemConfig.write_engine_scope = "bank"``), which lets the
oldest-*ready*-first candidate scan pick a write to an idle bank while
another bank's write is still in service.

It deliberately has **no RoW and no WoW**: it is the comparator showing
how far bank-level write parallelism alone goes against PCMap's
overlap/consolidation mechanisms, mirroring the paper's related-work
contrast (§VII).
"""

from __future__ import annotations

from repro.core.fine import FineWritePolicy
from repro.memory.policy import WriteContext


class PartitionParallelWritePolicy(FineWritePolicy):
    """Fine-grained writes with a bank-scoped write-engine token."""

    name = "palp-partition-write"

    def on_bind(self) -> None:
        c = self.controller
        assert c is not None
        if c.fine.scope != "bank":
            raise ValueError(
                "PartitionParallelWritePolicy requires "
                "write_engine_scope='bank' (got "
                f"{c.fine.scope!r})"
            )
        self._m_parallel = c.telemetry.metrics.counter(
            "palp.parallel_issues"
        )

    def select_write(self, ctx: WriteContext) -> bool:
        c = self.controller
        assert c is not None
        if c.fine.inflight > 0:
            # Another write is still in service: only the bank-scoped
            # token makes this issue possible, so count it.
            self._m_parallel.inc()
        return super().select_write(ctx)
