"""WoW — write-over-write consolidation policy (paper §IV-C).

:class:`WriteOverWritePolicy` packs the head write together with younger
writes whose (rotated) dirty chip sets are pairwise disjoint and idle,
so one write-engine service slot moves several lines at once.  Admission
is a **two-pass greedy**: the first pass requires the candidates' ECC/PCC
chips to be disjoint too (their whole service parallelises — what
rotation makes possible); the second pass admits members whose data chips
are free but whose code updates collide and serialise within the window
(Figure 5(d), the no-rotation behaviour).

The policy always claims the step (a one-member "group" is just the plain
fine write), matching §IV-D2 where WoW is the unconditional fallback of
a declined RoW attempt.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.memory.address import DecodedAddress
from repro.memory.policy import BaseSchedulerPolicy, WriteContext
from repro.memory.request import MemoryRequest, ServiceClass
from repro.telemetry import EventType, TraceEvent


class WriteOverWritePolicy(BaseSchedulerPolicy):
    """Consolidate chip-disjoint writes into one service window."""

    name = "wow-group"

    def on_bind(self) -> None:
        c = self.controller
        assert c is not None
        metrics = c.telemetry.metrics
        self._m_groups = metrics.counter("wow.groups")
        self._m_members = metrics.counter("wow.member_writes")

    def select_write(self, ctx: WriteContext) -> bool:
        c = self.controller
        assert c is not None
        group_service_end = self._issue_group(ctx.head, ctx.decoded, ctx.now)
        # The write engine is held through the serialised ECC/PCC updates
        # of the whole group (Figure 5(d)): without rotation this is what
        # limits WoW's bandwidth gain.
        c.fine.hold(ctx.decoded, group_service_end)
        return True

    def _issue_group(
        self, head: MemoryRequest, decoded_head: DecodedAddress, now: int
    ) -> int:
        """Consolidate chip-disjoint writes; returns the group's data end.

        Members may target any bank of the seed's rank — §IV-D2's policy
        selects "one or more write requests that can be parallelized with
        [the] on-going write", constrained only by pairwise-disjoint
        (rotated) dirty-chip sets that are idle now.
        """
        c = self.controller
        assert c is not None and self.chain is not None
        rank = c.ranks[decoded_head.rank]

        layout = c.layout

        def chip_sets(
            req: MemoryRequest, decoded: DecodedAddress
        ) -> Tuple[Set[int], Set[int]]:
            # Line address and dirty mask are final once queued, so the
            # sets live on the request across admission scans.
            cached = req.wow_sets
            if cached is not None:
                return cached
            line = decoded.line_address
            chips = req.chips
            if chips is None:
                chips = layout.dirty_chips(line, req.dirty_mask)
            data = set(chips)
            code = {layout.ecc_chip(line)}
            pcc = layout.pcc_chip(line)
            if pcc is not None:
                code.add(pcc)
            req.wow_sets = sets = (data, code)
            return sets

        head_data, head_code = chip_sets(head, decoded_head)
        members: List[Tuple[MemoryRequest, DecodedAddress]] = [
            (head, decoded_head)
        ]
        admitted = {id(head)}
        occupied_all = head_data | head_code
        budget = c.config.max_inflight_writes - c.fine.inflight
        limit = min(c.config.wow_max_group, budget)
        head_rank = decoded_head.rank
        mapper_decode = c.mapper.decode

        for require_code_disjoint in (True, False):
            if len(members) >= limit:
                break
            # No queue mutation happens during admission (members issue
            # after both passes), so iterate the pending FIFO directly.
            for req in c.write_q.pending:
                if len(members) >= limit:
                    break
                if (
                    not req.dirty_mask
                    or req.start_service >= 0
                    or id(req) in admitted
                ):
                    continue
                decoded = req.decoded
                if decoded is None:
                    decoded = mapper_decode(req.address)
                if decoded.rank != head_rank:
                    continue
                data, code = chip_sets(req, decoded)
                if not occupied_all.isdisjoint(data):
                    continue
                if require_code_disjoint and not occupied_all.isdisjoint(code):
                    continue
                # Same ready flavour (write-ready over the dirty chips)
                # the candidate scan caches — reuse its rank-version memo.
                version = rank.version
                cached = req.ready_cache
                if cached is not None and cached[0] == version:
                    ready = cached[1]
                else:
                    ready = rank.write_ready_time(data, decoded.bank)
                    req.ready_cache = (version, ready)
                if ready > now:
                    continue
                members.append((req, decoded))
                admitted.add(id(req))
                occupied_all.update(data | code)

        window = c._open_window(-1, -1)
        self.chain.on_window_open(window, decoded_head.rank)
        grouped = len(members) > 1
        if grouped and c.tracer.enabled:
            c.tracer.emit(TraceEvent(
                EventType.WOW_OPEN,
                tick=now,
                channel=c.channel_id,
                rank=decoded_head.rank,
                req_id=head.req_id,
                extra={"group_size": len(members)},
            ))
            for req, _decoded in members[1:]:
                c.tracer.emit(TraceEvent(
                    EventType.WOW_JOIN,
                    tick=now,
                    channel=c.channel_id,
                    rank=decoded_head.rank,
                    req_id=req.req_id,
                ))
        group_service_end = now
        for req, decoded in members:
            if grouped:
                req.service_class = ServiceClass.WOW_MEMBER
            _start, _data_end, service_end = c.fine.issue_fine_write(
                req, decoded, now, window=window
            )
            group_service_end = max(group_service_end, service_end)
        if grouped:
            c.stats.wow_groups += 1
            c.stats.wow_member_writes += len(members)
            self._m_groups.inc()
            self._m_members.inc(len(members))
            if c.tracer.enabled:
                c.tracer.emit(TraceEvent(
                    EventType.WOW_CLOSE,
                    tick=now,
                    channel=c.channel_id,
                    rank=decoded_head.rank,
                    req_id=head.req_id,
                    end=group_service_end,
                    extra={"group_size": len(members)},
                ))
        return group_service_end
