"""Fine-grained write engine and its basic policies (paper §IV-A2).

:class:`FineWriteEngine` owns the mechanics every PCMap policy shares:

* issuing a write that touches only its essential-word chips (plus the
  ECC/PCC word updates, optionally deferred for RoW's two-step write);
* the in-flight write budget (the DIMM register's finite command
  buffering, Figure 7);
* the **write-engine token** — one write *group* in array service per
  rank at a time, because the PCM write-power budget serialises array
  writes rank-wide (DESIGN.md §5).  The PALP-style comparator narrows
  the token's scope to one per (rank, bank) *partition* instead, which
  is the whole difference between ``palp-lite`` and a plain fine-write
  system.

Two chain policies live here because they are pure engine drivers:

* :class:`SilentWritePolicy` — zero-dirty write-backs (the chips'
  read-before-write finds nothing to change) cost one array read and
  open a zero-activity window so they stay in the IRLP average;
* :class:`FineWritePolicy` — the fallback plain fine-grained write of
  the head, holding the engine token through its full service.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple, Union

from repro.memory.address import DecodedAddress
from repro.memory.bus import BusDirection
from repro.memory.policy import BaseSchedulerPolicy, WriteContext
from repro.memory.request import MemoryRequest, ServiceClass
from repro.memory.rank import RankState

if TYPE_CHECKING:
    from repro.memory.controller import MemoryController
    from repro.sim.metrics import WriteWindow

#: Scope of the write-engine token: ``"rank"`` models the rank-wide PCM
#: write-power budget (all PCMap systems); ``"bank"`` frees concurrent
#: write services on different banks (the PALP-style comparator).
ENGINE_SCOPES = ("rank", "bank")


class FineWriteEngine:
    """Shared fine-grained write mechanics for one channel controller."""

    def __init__(self, controller: "MemoryController", scope: str = "rank"):
        if scope not in ENGINE_SCOPES:
            raise ValueError(
                f"unknown write-engine scope {scope!r}; expected one of "
                f"{ENGINE_SCOPES}"
            )
        self.c = controller
        self.scope = scope
        #: Scope resolved to a bool once: ``free_at`` sits in the
        #: write-candidate scan and must not string-compare per call.
        self._rank_scope = scope == "rank"
        #: Fine-grained writes currently in flight on this channel.
        self.inflight = 0
        #: Engine-token free times, keyed by rank (or (rank, bank)).
        self._free: dict = {}
        #: Bumped whenever a token reservation changes (scan-memo input).
        self.version = 0

    # ------------------------------------------------------------------
    # Write-engine token
    # ------------------------------------------------------------------
    def _token(self, decoded: DecodedAddress) -> Union[int, Tuple[int, int]]:
        if self._rank_scope:
            return decoded.rank
        return (decoded.rank, decoded.bank)

    def free_at(self, decoded: DecodedAddress) -> int:
        """Tick at which ``decoded``'s engine token is free."""
        if self._rank_scope:
            return self._free.get(decoded.rank, 0)
        return self._free.get((decoded.rank, decoded.bank), 0)

    def hold(self, decoded: DecodedAddress, until: int) -> None:
        """Extend the engine-token reservation to ``until``."""
        token = self._token(decoded)
        if until > self._free.get(token, 0):
            self._free[token] = until
            self.version += 1

    @property
    def budget_left(self) -> int:
        """Head-room under the in-flight cap (never negative)."""
        return max(0, self.c.config.max_inflight_writes - self.inflight)

    # ------------------------------------------------------------------
    # Fine-grained writes (§IV-A2)
    # ------------------------------------------------------------------
    def issue_silent_write(
        self, req: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> None:
        """Zero-dirty write-back: read-before-write finds nothing to change.

        The chips still perform the compare, which costs one array read on
        the line's data chips but never engages the write circuitry.
        """
        c = self.c
        rank = c.ranks[decoded.rank]
        chips = c.layout.all_data_chips(decoded.line_address)
        start = max(
            now + c.timing.status_poll_ticks,
            rank.read_ready_time(chips, decoded.bank),
        )
        end = start + c.timing.array_read_ticks
        rank.log_label = f"Cmp-{req.req_id}"
        rank.reserve_read(chips, decoded.bank, end, decoded.row, start=start)
        req.service_class = ServiceClass.SILENT
        # Zero-activity window: silent write-backs count toward IRLP.
        c._open_window(start, end)
        self.begin_inflight(req, start, end, decoded)

    def issue_fine_write(
        self,
        req: MemoryRequest,
        decoded: DecodedAddress,
        now: int,
        window: "WriteWindow",
        defer_pcc: bool = False,
    ) -> Tuple[int, int, int]:
        """Issue one write touching only its essential-word chips.

        Reserves each dirty chip for transfer + read-before-write + array
        write, the ECC chip for its word update, and the PCC chip either
        immediately or (``defer_pcc``, the RoW two-step) once the data
        step finishes.  Returns ``(start, data_end, service_end)``; the
        service end covers the ECC/PCC updates, which without rotation
        serialise on the fixed code chips and stretch the window exactly
        as the paper's Figure 5(d) shows.

        Chip activity is attributed to ``window`` for IRLP accounting.
        """
        c = self.c
        rank = c.ranks[decoded.rank]
        line = decoded.line_address
        bank, row = decoded.bank, decoded.row
        start = now + c.timing.status_poll_ticks

        data_end = start
        window_start: Optional[int] = None
        for word in req.dirty_words:
            chip = c.layout.data_chip(line, word)
            chip_start = max(start, rank.chips[chip].write_ready(bank))
            _xs, xfer_end = c.bus.reserve_partial(
                chip, BusDirection.WRITE, chip_start
            )
            # The word-write latency includes the chip's internal
            # read-before-write (Figure 5 charges no separate activation).
            array_start = xfer_end
            ticks = c._word_write_ticks(req, word)
            chip_end = array_start + ticks
            rank.log_label = f"Wr-{req.req_id}"
            rank.reserve_chip_write(chip, bank, chip_end, row, start=array_start)
            c.stats.record_chip_write(chip)
            # Route through _record_activity so concurrent windows (other
            # in-flight writes) see this chip as busy too — IRLP counts
            # every chip serving *some* request during a write window.
            c._record_activity((chip,), array_start, chip_end)
            data_end = max(data_end, chip_end)
            if window_start is None or array_start < window_start:
                window_start = array_start
        window.absorb(window_start if window_start is not None else start, data_end)

        ecc_end = self.issue_code_update(
            rank, c.layout.ecc_chip(line), bank, row, earliest=start
        )
        pcc_chip = c.layout.pcc_chip(line)
        completion = max(data_end, ecc_end)

        if pcc_chip is None:
            window.extend(completion)
            window.note_service_end(completion)
            self.begin_inflight(req, start, completion, decoded)
        elif defer_pcc:
            # RoW step 2: the PCC update starts right after the data step
            # so the chip stays free for reconstruction meanwhile.  The
            # reservation is made *at* data_end (not now) so overlapped
            # reads can use the PCC chip during step 1.
            self.begin_inflight(
                req, start, completion, decoded, hold_completion=True
            )

            def _step_two() -> None:
                pcc_end = self.issue_code_update(
                    rank, pcc_chip, bank, row, earliest=c.engine.now
                )
                final = max(completion, pcc_end)
                window.extend(final)
                window.note_service_end(final)
                c.engine.call_at(final, c._complete_write, req)

            c.engine.call_at(data_end, _step_two)
        else:
            pcc_end = self.issue_code_update(
                rank, pcc_chip, bank, row, earliest=start
            )
            completion = max(completion, pcc_end)
            window.extend(completion)
            window.note_service_end(completion)
            self.begin_inflight(req, start, completion, decoded)
        return start, data_end, completion

    def issue_code_update(
        self, rank: RankState, chip: int, bank: int, row: int, earliest: int
    ) -> int:
        """Reserve an ECC/PCC word update on ``chip``; returns its end tick.

        The update is a differential PCM word write (cheaper than a full
        data word, see TimingParams.ecc_update_fraction).  Updates queue
        up behind whatever the chip is already doing — this is the
        serialisation that pins down WoW without ECC rotation.
        """
        c = self.c
        chip_start = max(earliest, rank.chips[chip].write_ready(bank))
        _xs, xfer_end = c.bus.reserve_partial(
            chip, BusDirection.WRITE, chip_start
        )
        # ecc_update_ticks is all-inclusive (read-modify-write of the
        # code word), mirroring the data-word write cost model.
        end = xfer_end + c.timing.ecc_update_ticks
        rank.log_label = "code-update"
        rank.reserve_chip_write(chip, bank, end, row, start=xfer_end)
        c.stats.record_chip_write(chip)
        return end

    def begin_inflight(
        self,
        req: MemoryRequest,
        start: int,
        completion: int,
        decoded: DecodedAddress,
        hold_completion: bool = False,
    ) -> None:
        """Common issue bookkeeping; schedules completion unless held.

        The queue entry stays until completion (see the base class note).
        """
        c = self.c
        req.start_service = start
        c.write_q.note_issued(req)
        if c.storage is not None and req.new_words is not None:
            c.storage.write_line(
                decoded.line_address, req.new_words, req.dirty_mask
            )
        self.inflight += 1
        if not hold_completion:
            c.engine.call_at(completion, c._complete_write, req)

    def note_write_complete(self) -> None:
        self.inflight -= 1


class SilentWritePolicy(BaseSchedulerPolicy):
    """Serve zero-dirty write-backs with a compare-only array read."""

    name = "silent-write"

    def select_write(self, ctx: WriteContext) -> bool:
        if ctx.head.dirty_mask:
            return False
        assert self.controller is not None
        self.controller.fine.issue_silent_write(ctx.head, ctx.decoded, ctx.now)
        return True


class FineWritePolicy(BaseSchedulerPolicy):
    """Fallback: a plain fine-grained write of the head.

    Holds the write-engine token through the full service (data + code
    updates) — without RoW/WoW nothing overlaps with the write window.
    """

    name = "fine-write"

    def select_write(self, ctx: WriteContext) -> bool:
        assert self.controller is not None
        c = self.controller
        window = c._open_window(-1, -1)
        _start, _data_end, completion = c.fine.issue_fine_write(
            ctx.head, ctx.decoded, ctx.now, window=window
        )
        self.chain.on_window_open(window, ctx.decoded.rank)
        c.fine.hold(ctx.decoded, completion)
        return True
