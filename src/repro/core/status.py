"""DIMM status register (paper §IV-D1, Figure 7).

The PCMap DIMM register keeps, per bank, one busy bit per chip.  A chip
sets its bit while it is array-writing a word and clears it when done; the
controller issues a ``Status`` command (2 memory cycles, 0.8 ns) to read
the flags before every scheduling decision involving overlap.

In this simulator chip occupancy already lives in
:class:`repro.memory.rank.RankState`; the status register is a thin,
faithfully-timed *view* of it.  Keeping it as a distinct object preserves
the paper's hardware boundary: the controller only learns busy/idle
through polls, and every poll is charged its bus cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.memory.rank import RankState
from repro.memory.timing import TimingParams


@dataclass
class StatusSnapshot:
    """Result of one ``Status`` poll."""

    poll_time: int            #: tick the poll was issued
    ready_time: int           #: tick the response is available at the controller
    busy_chips: Tuple[int, ...]  #: chips whose write circuitry is busy

    def is_busy(self, chip: int) -> bool:
        return chip in self.busy_chips

    def busy_mask(self) -> int:
        mask = 0
        for chip in self.busy_chips:
            mask |= 1 << chip
        return mask


class DimmStatusRegister:
    """Per-rank busy/idle flags, read through timed polls."""

    def __init__(self, rank: RankState, timing: TimingParams):
        self.rank = rank
        self.timing = timing
        #: Number of Status commands issued (reported in examples/tests).
        self.polls = 0

    def poll(self, now: int) -> StatusSnapshot:
        """Issue a Status command at ``now``; returns the snapshot.

        The flags reflect chip state at ``now``; the controller can act on
        them from ``ready_time`` onwards (the 2-cycle command/response
        turnaround of §IV-D1).
        """
        self.polls += 1
        return StatusSnapshot(
            poll_time=now,
            ready_time=now + self.timing.status_poll_ticks,
            busy_chips=self.rank.busy_chips_at(now),
        )

    def idle_chips(self, now: int) -> Tuple[int, ...]:
        """Complement view: chips free for overlapped work at ``now``."""
        busy = set(self.rank.busy_chips_at(now))
        return tuple(c for c in range(self.rank.n_chips) if c not in busy)
