"""Essential-word detection (paper §IV-A1).

A write-back only has to update the words whose values actually changed —
the *essential* words.  The paper weighs three detection points (extended
dirty flags in the LLC, read-before-write at the controller, and
read-before-write inside the PCM chips) and PCMap adopts the third: the
chips compare old and new data during the write's read phase and report
completion through the DIMM status register.

This module provides the comparison itself plus per-request statistics.
In functional simulations the detector diffs real line contents from the
backing store; in statistical simulations the trace generator supplies
dirty masks directly and the detector only validates/accounts for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.memory.request import MemoryRequest, WORDS_PER_LINE
from repro.memory.storage import MemoryStorage


def diff_words(old: Tuple[int, ...], new: Tuple[int, ...]) -> int:
    """Dirty-word mask from an old/new word-pair comparison."""
    if len(old) != WORDS_PER_LINE or len(new) != WORDS_PER_LINE:
        raise ValueError("lines must have 8 words")
    mask = 0
    bit = 1
    for old_word, new_word in zip(old, new):
        if old_word != new_word:
            mask |= bit
        bit <<= 1
    return mask


@dataclass
class EssentialWordStats:
    """Aggregate dirty-word statistics (drives Figure 2)."""

    histogram: List[int] = field(default_factory=lambda: [0] * (WORDS_PER_LINE + 1))

    def record(self, dirty_count: int) -> None:
        self.histogram[dirty_count] += 1

    @property
    def total(self) -> int:
        return sum(self.histogram)

    def fraction(self, dirty_count: int) -> float:
        """Fraction of write-backs with exactly ``dirty_count`` dirty words."""
        if not self.total:
            return 0.0
        return self.histogram[dirty_count] / self.total

    def fraction_at_most(self, dirty_count: int) -> float:
        """Fraction of write-backs with <= ``dirty_count`` dirty words."""
        if not self.total:
            return 0.0
        return sum(self.histogram[: dirty_count + 1]) / self.total

    @property
    def mean_dirty_words(self) -> float:
        if not self.total:
            return 0.0
        return sum(i * n for i, n in enumerate(self.histogram)) / self.total


class EssentialWordDetector:
    """Determines (or validates) the dirty mask of each write-back."""

    def __init__(self, storage: Optional[MemoryStorage] = None):
        self.storage = storage
        self.stats = EssentialWordStats()

    def detect(self, request: MemoryRequest) -> int:
        """Resolve the request's dirty mask; returns it and records stats.

        Functional mode (``new_words`` present and a backing store
        attached): perform the chip-level read-before-write comparison —
        silent stores fall out naturally as words whose new value equals
        the stored value.  The comparison *narrows* any mask the cache
        supplied (a word flagged dirty by the cache but holding an
        unchanged value is a silent store, paper §III-B).

        Statistical mode: trust the trace-provided mask.
        """
        if not request.is_write:
            raise ValueError("essential-word detection applies to writes only")
        mask = request.dirty_mask
        if self.storage is not None and request.new_words is not None:
            old = self.storage.read_line(request.line_address).words
            request.old_words = old
            comparison = diff_words(old, request.new_words)
            mask = comparison & mask if request.dirty_mask else comparison
            request.dirty_mask = mask
        self.stats.record(request.dirty_count)
        return request.dirty_mask
