"""System configuration for the six evaluated memory systems (paper §V).

A :class:`SystemConfig` bundles everything a channel controller needs:
timing, geometry, the PCMap feature switches (RoW / WoW / rotations), the
queue/drain policy parameters and the RoW fault model.  The named
constructors for the paper's six variants live in
:mod:`repro.core.systems`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.memory.address import (
    BASELINE_GEOMETRY,
    MemoryGeometry,
    PCMAP_GEOMETRY,
)
from repro.memory.timing import DEFAULT_TIMING, TimingParams


@dataclass(frozen=True)
class SystemConfig:
    """Full configuration of one simulated memory system."""

    name: str = "baseline"
    timing: TimingParams = field(default_factory=lambda: DEFAULT_TIMING)
    geometry: MemoryGeometry = field(default_factory=lambda: BASELINE_GEOMETRY)

    # ----- PCMap feature switches --------------------------------------
    #: Fine-grained (sub-ranked) writes: update only essential-word chips.
    fine_grained_writes: bool = False
    #: RoW: overlap reads with single-essential-word writes via PCC.
    enable_row: bool = False
    #: WoW: consolidate chip-disjoint writes into one service window.
    enable_wow: bool = False
    #: Rotate data words across the eight data chips (RWoW-RD).
    rotate_data: bool = False
    #: Rotate ECC/PCC across all ten chips (RWoW-RDE); implies rotate_data.
    rotate_ecc: bool = False
    #: Prior-art comparator: reads preempt ongoing writes (write pausing,
    #: the paper's related work [11]).  Mutually exclusive with PCMap.
    enable_write_pausing: bool = False
    #: Scope of the write-engine token serialising array write service:
    #: ``"rank"`` models the rank-wide PCM write-power budget (all PCMap
    #: systems); ``"bank"`` frees concurrent services on distinct banks —
    #: the PALP-style ``palp-lite`` comparator (Song et al.).
    write_engine_scope: str = "rank"

    # ----- controller policy -------------------------------------------
    read_queue_capacity: int = 8
    write_queue_capacity: int = 32
    drain_high_watermark: float = 0.8   #: the paper's alpha
    drain_low_watermark: float = 0.25
    #: Maximum writes consolidated into one WoW group.
    wow_max_group: int = 8
    #: RoW applies only to writes with at most this many essential words
    #: (the paper fixes this at 1, §IV-B4).
    row_max_essential_words: int = 1
    #: Upper bound on reads overlapped inside one RoW window.
    row_max_overlapped_reads: int = 8
    #: Maximum fine-grained writes in flight per channel — models the
    #: finite command buffering of the DIMM register (Figure 7).
    max_inflight_writes: int = 16

    # ----- RoW fault / rollback model ----------------------------------
    #: Probability that the CPU consumed a RoW read's data before its
    #: deferred verification completed, forcing a rollback in the paper's
    #: "always faulty" model (Table IV's per-workload rates; 0 disables).
    row_rollback_rate: float = 0.0

    # ----- simulation fidelity -----------------------------------------
    #: Keep a functional backing store and move real bits end to end.
    functional: bool = False

    def __post_init__(self) -> None:
        if self.enable_write_pausing and self.fine_grained_writes:
            raise ValueError(
                "write pausing is a baseline comparator; it cannot be "
                "combined with PCMap's fine-grained writes"
            )
        if self.enable_row and not self.fine_grained_writes:
            raise ValueError("RoW requires fine-grained writes")
        if self.enable_wow and not self.fine_grained_writes:
            raise ValueError("WoW requires fine-grained writes")
        if self.enable_row and not self.geometry.has_pcc_chip:
            raise ValueError("RoW requires the PCC chip")
        if self.rotate_ecc and not self.geometry.has_pcc_chip:
            raise ValueError("ECC/PCC rotation requires the PCC chip")
        if self.rotate_ecc and not self.rotate_data:
            raise ValueError("ECC/PCC rotation implies data rotation")
        if not 0.0 <= self.row_rollback_rate <= 1.0:
            raise ValueError(
                f"rollback rate out of range: {self.row_rollback_rate}"
            )
        if self.row_max_essential_words < 1:
            raise ValueError("row_max_essential_words must be >= 1")
        if self.wow_max_group < 1:
            raise ValueError("wow_max_group must be >= 1")
        if self.write_engine_scope not in ("rank", "bank"):
            raise ValueError(
                f"unknown write_engine_scope {self.write_engine_scope!r}; "
                "expected 'rank' or 'bank'"
            )
        if self.write_engine_scope == "bank":
            if not self.fine_grained_writes:
                raise ValueError(
                    "a bank-scoped write engine requires fine-grained writes"
                )
            if self.enable_row or self.enable_wow:
                raise ValueError(
                    "the bank-scoped write engine is the PALP-style "
                    "comparator; it cannot be combined with RoW/WoW"
                )

    # ------------------------------------------------------------------
    @property
    def is_pcmap(self) -> bool:
        """True for any system with fine-grained writes (non-baseline)."""
        return self.fine_grained_writes

    def with_timing(self, timing: TimingParams) -> "SystemConfig":
        """Copy with different timing (used by the Table III sweep)."""
        return replace(self, timing=timing)

    def with_rollback_rate(self, rate: float) -> "SystemConfig":
        """Copy with a different RoW rollback rate (Table IV)."""
        return replace(self, row_rollback_rate=rate)

    def describe(self) -> str:
        """One-line human summary."""
        features = []
        if self.enable_row:
            features.append("RoW")
        if self.enable_wow:
            features.append("WoW")
        if self.rotate_ecc:
            features.append("rot(data+ECC/PCC)")
        elif self.rotate_data:
            features.append("rot(data)")
        if self.enable_write_pausing:
            features.append("write pausing (prior art)")
        if self.write_engine_scope == "bank":
            features.append("partition-parallel writes (prior art)")
        if not features:
            features.append("coarse writes, read-priority drain")
        return f"{self.name}: {', '.join(features)}"


def pcmap_config(**overrides) -> SystemConfig:
    """A PCMap-capable config (10-chip geometry, fine-grained writes)."""
    base = dict(
        geometry=PCMAP_GEOMETRY,
        fine_grained_writes=True,
    )
    base.update(overrides)
    return SystemConfig(**base)
