"""Word-to-chip layouts: fixed, data-rotated, and fully rotated (PCMap).

The paper's three layouts (§IV-A2, §IV-C2, Figure 6):

* **Fixed** — word ``k`` of every line lives on chip ``k``; ECC on chip 8;
  PCC (when present) on chip 9.  This is the baseline and the ``-NR``
  variants.
* **Data rotation** (``RWoW-RD``) — word ``k`` of the line at address ``A``
  lives on chip ``(k + A/L) mod 8``.  Successive lines shift by one chip,
  de-clustering the dirty offsets of successive write-backs.  ECC and PCC
  stay pinned to chips 8 and 9.
* **Full rotation** (``RWoW-RDE``) — the ten logical slots (eight data
  words, ECC, PCC) rotate across the ten physical chips with offset
  ``A/L mod 10``, RAID-5 style, so the error-code updates are spread too.

All layouts are pure functions of the line address, so the controller
never needs per-line bookkeeping (paper §IV-C2) — the same property this
module's property tests pin down.

Being pure *and periodic* in the line address (period 1, 8 or 10), every
lookup the scheduler's hot loops perform — ``data_chip``, ``dirty_chips``
over all 256 masks, ``read_chips``, ``word_of_chip`` — is precomputed per
rotation offset at construction.  Subclasses supply only the raw
``offset x slot -> chip`` arithmetic (``_raw_*``); the base class builds
the tables and serves all queries from them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

from repro.memory.address import MemoryGeometry
from repro.memory.request import WORDS_PER_LINE

_FULL_MASK = (1 << WORDS_PER_LINE) - 1


class RankLayout:
    """Base class: maps logical line slots to physical chips.

    Subclasses call :meth:`_build_layout_tables` at the end of their
    ``__init__`` with the layout's rotation period; all public queries
    are then O(1) table lookups keyed on ``line_address % period``.
    """

    #: Number of physical chips this layout addresses.
    n_chips: int

    # ------------------------------------------------------------------
    # Raw per-offset arithmetic supplied by subclasses
    # ------------------------------------------------------------------
    def _raw_data_chip(self, offset: int, word: int) -> int:
        """Physical chip of ``word`` for lines with rotation ``offset``."""
        raise NotImplementedError

    def _raw_ecc_chip(self, offset: int) -> int:
        """Physical chip of the SECDED word at rotation ``offset``."""
        raise NotImplementedError

    def _raw_pcc_chip(self, offset: int) -> Optional[int]:
        """Physical chip of the PCC word (None without a PCC chip)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------
    def _build_layout_tables(self, period: int) -> None:
        self._period = period
        data_by_offset = []
        dirty_by_offset = []
        read_by_offset = []
        ecc_by_offset = []
        pcc_by_offset = []
        word_of_chip_by_offset = []
        for offset in range(period):
            chips = tuple(
                self._raw_data_chip(offset, w) for w in range(WORDS_PER_LINE)
            )
            data_by_offset.append(chips)
            # mask -> chips of its set words, ascending word order.  Built
            # by the lowest-bit recurrence: mask = lowest set word + rest,
            # and the rest's tuple is already computed (rest < mask) —
            # 256 tuple concatenations instead of 256 x 8 bit tests.
            dirty_for: List[Tuple[int, ...]] = [()] * (_FULL_MASK + 1)
            for mask in range(1, _FULL_MASK + 1):
                low = (mask & -mask).bit_length() - 1
                dirty_for[mask] = (chips[low],) + dirty_for[mask & (mask - 1)]
            dirty_by_offset.append(tuple(dirty_for))
            ecc = self._raw_ecc_chip(offset)
            ecc_by_offset.append(ecc)
            pcc_by_offset.append(self._raw_pcc_chip(offset))
            read_by_offset.append(chips + (ecc,))
            inverse: list = [None] * self.n_chips
            for w, chip in enumerate(chips):
                inverse[chip] = w
            word_of_chip_by_offset.append(tuple(inverse))
        self._data_by_offset = tuple(data_by_offset)
        self._dirty_by_offset = tuple(dirty_by_offset)
        self._read_by_offset = tuple(read_by_offset)
        self._ecc_by_offset = tuple(ecc_by_offset)
        self._pcc_by_offset = tuple(pcc_by_offset)
        self._word_of_chip_by_offset = tuple(word_of_chip_by_offset)

    # ------------------------------------------------------------------
    # Queries (all table lookups)
    # ------------------------------------------------------------------
    def data_chip(self, line_address: int, word: int) -> int:
        """Physical chip holding ``word`` of the line."""
        if not 0 <= word < WORDS_PER_LINE:
            raise ValueError(f"word index out of range: {word}")
        return self._data_by_offset[line_address % self._period][word]

    def ecc_chip(self, line_address: int) -> int:
        """Physical chip holding the line's SECDED word."""
        return self._ecc_by_offset[line_address % self._period]

    def pcc_chip(self, line_address: int) -> Optional[int]:
        """Physical chip holding the line's PCC word (None without PCC)."""
        return self._pcc_by_offset[line_address % self._period]

    def all_data_chips(self, line_address: int) -> Tuple[int, ...]:
        """Physical chips of all eight data words, in word order."""
        return self._data_by_offset[line_address % self._period]

    def dirty_chips(self, line_address: int, dirty_mask: int) -> Tuple[int, ...]:
        """Physical chips that a write with ``dirty_mask`` must update."""
        return self._dirty_by_offset[line_address % self._period][
            dirty_mask & _FULL_MASK
        ]

    def word_of_chip(self, line_address: int, chip: int) -> Optional[int]:
        """Which data word of the line lives on ``chip`` (None if none)."""
        if not 0 <= chip < self.n_chips:
            return None
        return self._word_of_chip_by_offset[line_address % self._period][chip]

    def read_chips(self, line_address: int) -> Tuple[int, ...]:
        """Chips involved in a normal coarse read (data + ECC)."""
        return self._read_by_offset[line_address % self._period]


class FixedLayout(RankLayout):
    """No rotation: word k -> chip k, ECC -> chip 8, PCC -> chip 9."""

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        self.n_chips = geometry.chips_per_rank
        self._build_layout_tables(period=1)

    def _raw_data_chip(self, offset: int, word: int) -> int:
        return word

    def _raw_ecc_chip(self, offset: int) -> int:
        return self.geometry.ecc_chip_index

    def _raw_pcc_chip(self, offset: int) -> Optional[int]:
        if not self.geometry.has_pcc_chip:
            return None
        return self.geometry.pcc_chip_index


class DataRotatedLayout(RankLayout):
    """Data words rotate across the eight data chips; ECC/PCC pinned.

    The rotation offset is ``line_address mod 8`` — the paper expresses it
    as ``Address mod (8 x L)`` over byte addresses, which reduces to the
    line index modulo 8.
    """

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        self.n_chips = geometry.chips_per_rank
        self._build_layout_tables(period=geometry.data_chips)

    def _raw_data_chip(self, offset: int, word: int) -> int:
        return (word + offset) % self.geometry.data_chips

    def _raw_ecc_chip(self, offset: int) -> int:
        return self.geometry.ecc_chip_index

    def _raw_pcc_chip(self, offset: int) -> Optional[int]:
        if not self.geometry.has_pcc_chip:
            return None
        return self.geometry.pcc_chip_index


class FullyRotatedLayout(RankLayout):
    """All ten slots (8 data + ECC + PCC) rotate across the ten chips.

    Offset ``line_address mod 10`` (the paper's ``Address mod (10 x L)``).
    Requires a PCC-equipped geometry.
    """

    ECC_SLOT = WORDS_PER_LINE      #: logical slot 8
    PCC_SLOT = WORDS_PER_LINE + 1  #: logical slot 9

    def __init__(self, geometry: MemoryGeometry):
        if not geometry.has_pcc_chip:
            raise ValueError("full rotation requires the PCC chip")
        self.geometry = geometry
        self.n_chips = geometry.chips_per_rank
        if self.n_chips != WORDS_PER_LINE + 2:
            raise ValueError(
                f"full rotation expects 10 chips, geometry has {self.n_chips}"
            )
        self._build_layout_tables(period=self.n_chips)

    def _raw_data_chip(self, offset: int, word: int) -> int:
        return (word + offset) % self.n_chips

    def _raw_ecc_chip(self, offset: int) -> int:
        return (self.ECC_SLOT + offset) % self.n_chips

    def _raw_pcc_chip(self, offset: int) -> Optional[int]:
        return (self.PCC_SLOT + offset) % self.n_chips


@lru_cache(maxsize=None)
def make_layout(
    geometry: MemoryGeometry, rotate_data: bool, rotate_ecc: bool
) -> RankLayout:
    """Layout factory for the evaluated system variants.

    ``rotate_ecc`` implies full (10-slot) rotation and therefore also
    rotates the data words, mirroring the paper's RWoW-RDE configuration.

    Memoized: layouts are immutable after construction (pure lookup
    tables keyed on a frozen geometry), and every controller of a
    multi-channel system would otherwise rebuild the same 256-entry
    dirty-chip tables per rotation offset.
    """
    if rotate_ecc:
        return FullyRotatedLayout(geometry)
    if rotate_data:
        return DataRotatedLayout(geometry)
    return FixedLayout(geometry)
