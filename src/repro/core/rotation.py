"""Word-to-chip layouts: fixed, data-rotated, and fully rotated (PCMap).

The paper's three layouts (§IV-A2, §IV-C2, Figure 6):

* **Fixed** — word ``k`` of every line lives on chip ``k``; ECC on chip 8;
  PCC (when present) on chip 9.  This is the baseline and the ``-NR``
  variants.
* **Data rotation** (``RWoW-RD``) — word ``k`` of the line at address ``A``
  lives on chip ``(k + A/L) mod 8``.  Successive lines shift by one chip,
  de-clustering the dirty offsets of successive write-backs.  ECC and PCC
  stay pinned to chips 8 and 9.
* **Full rotation** (``RWoW-RDE``) — the ten logical slots (eight data
  words, ECC, PCC) rotate across the ten physical chips with offset
  ``A/L mod 10``, RAID-5 style, so the error-code updates are spread too.

All layouts are pure functions of the line address, so the controller
never needs per-line bookkeeping (paper §IV-C2) — the same property this
module's property tests pin down.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.memory.address import MemoryGeometry
from repro.memory.request import WORDS_PER_LINE


class RankLayout:
    """Base class: maps logical line slots to physical chips."""

    #: Number of physical chips this layout addresses.
    n_chips: int

    def data_chip(self, line_address: int, word: int) -> int:
        """Physical chip holding ``word`` of the line."""
        raise NotImplementedError

    def ecc_chip(self, line_address: int) -> int:
        """Physical chip holding the line's SECDED word."""
        raise NotImplementedError

    def pcc_chip(self, line_address: int) -> Optional[int]:
        """Physical chip holding the line's PCC word (None without PCC)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived helpers shared by all layouts
    # ------------------------------------------------------------------
    def all_data_chips(self, line_address: int) -> Tuple[int, ...]:
        """Physical chips of all eight data words, in word order."""
        return tuple(
            self.data_chip(line_address, w) for w in range(WORDS_PER_LINE)
        )

    def dirty_chips(self, line_address: int, dirty_mask: int) -> Tuple[int, ...]:
        """Physical chips that a write with ``dirty_mask`` must update."""
        return tuple(
            self.data_chip(line_address, w)
            for w in range(WORDS_PER_LINE)
            if (dirty_mask >> w) & 1
        )

    def word_of_chip(self, line_address: int, chip: int) -> Optional[int]:
        """Which data word of the line lives on ``chip`` (None if none)."""
        for w in range(WORDS_PER_LINE):
            if self.data_chip(line_address, w) == chip:
                return w
        return None

    def read_chips(self, line_address: int) -> Tuple[int, ...]:
        """Chips involved in a normal coarse read (data + ECC)."""
        return self.all_data_chips(line_address) + (self.ecc_chip(line_address),)


class FixedLayout(RankLayout):
    """No rotation: word k -> chip k, ECC -> chip 8, PCC -> chip 9."""

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        self.n_chips = geometry.chips_per_rank

    def data_chip(self, line_address: int, word: int) -> int:
        if not 0 <= word < WORDS_PER_LINE:
            raise ValueError(f"word index out of range: {word}")
        return word

    def ecc_chip(self, line_address: int) -> int:
        return self.geometry.ecc_chip_index

    def pcc_chip(self, line_address: int) -> Optional[int]:
        if not self.geometry.has_pcc_chip:
            return None
        return self.geometry.pcc_chip_index


class DataRotatedLayout(RankLayout):
    """Data words rotate across the eight data chips; ECC/PCC pinned.

    The rotation offset is ``line_address mod 8`` — the paper expresses it
    as ``Address mod (8 x L)`` over byte addresses, which reduces to the
    line index modulo 8.
    """

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        self.n_chips = geometry.chips_per_rank

    def data_chip(self, line_address: int, word: int) -> int:
        if not 0 <= word < WORDS_PER_LINE:
            raise ValueError(f"word index out of range: {word}")
        offset = line_address % self.geometry.data_chips
        return (word + offset) % self.geometry.data_chips

    def ecc_chip(self, line_address: int) -> int:
        return self.geometry.ecc_chip_index

    def pcc_chip(self, line_address: int) -> Optional[int]:
        if not self.geometry.has_pcc_chip:
            return None
        return self.geometry.pcc_chip_index


class FullyRotatedLayout(RankLayout):
    """All ten slots (8 data + ECC + PCC) rotate across the ten chips.

    Offset ``line_address mod 10`` (the paper's ``Address mod (10 x L)``).
    Requires a PCC-equipped geometry.
    """

    ECC_SLOT = WORDS_PER_LINE      #: logical slot 8
    PCC_SLOT = WORDS_PER_LINE + 1  #: logical slot 9

    def __init__(self, geometry: MemoryGeometry):
        if not geometry.has_pcc_chip:
            raise ValueError("full rotation requires the PCC chip")
        self.geometry = geometry
        self.n_chips = geometry.chips_per_rank
        if self.n_chips != WORDS_PER_LINE + 2:
            raise ValueError(
                f"full rotation expects 10 chips, geometry has {self.n_chips}"
            )

    def _chip_of_slot(self, line_address: int, slot: int) -> int:
        offset = line_address % self.n_chips
        return (slot + offset) % self.n_chips

    def data_chip(self, line_address: int, word: int) -> int:
        if not 0 <= word < WORDS_PER_LINE:
            raise ValueError(f"word index out of range: {word}")
        return self._chip_of_slot(line_address, word)

    def ecc_chip(self, line_address: int) -> int:
        return self._chip_of_slot(line_address, self.ECC_SLOT)

    def pcc_chip(self, line_address: int) -> Optional[int]:
        return self._chip_of_slot(line_address, self.PCC_SLOT)


def make_layout(
    geometry: MemoryGeometry, rotate_data: bool, rotate_ecc: bool
) -> RankLayout:
    """Layout factory for the evaluated system variants.

    ``rotate_ecc`` implies full (10-slot) rotation and therefore also
    rotates the data words, mirroring the paper's RWoW-RDE configuration.
    """
    if rotate_ecc:
        return FullyRotatedLayout(geometry)
    if rotate_data:
        return DataRotatedLayout(geometry)
    return FixedLayout(geometry)
