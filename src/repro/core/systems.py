"""Named constructors for the six evaluated systems (paper §V).

1. ``baseline``  — read-over-write priority with an 80 % write-drain
   watermark; coarse (whole-rank) writes; 9-chip ECC DIMM.
2. ``row-nr``    — RoW only; fixed layout.
3. ``wow-nr``    — WoW only; fixed layout.
4. ``rwow-nr``   — RoW + WoW; fixed layout.
5. ``rwow-rd``   — RoW + WoW; data-word rotation.
6. ``rwow-rde``  — RoW + WoW; data and ECC/PCC rotation (full PCMap).

All PCMap variants use the 10-chip geometry (8 data + ECC + PCC) because
RoW's reconstruction requires the PCC chip; ``wow-nr`` keeps the PCC chip
too so the five PCMap variants differ only in policy, matching the paper's
controlled comparison.

Two prior-art comparators ride along (``COMPARATOR_SYSTEM_NAMES``):
``write-pausing`` (Qureshi et al., the paper's [11]) and ``palp-lite``
(partition-parallel write issue after Song et al.).

Every system — paper variants and comparators alike — instantiates
through the same scheduler-policy chain: :func:`build_policies` maps a
config's feature flags to an ordered list of
:class:`~repro.memory.policy.SchedulerPolicy` objects, which is the
§IV-D2 dispatch order expressed as data instead of an if/elif ladder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.cache.dram_cache import DramCacheConfig
from repro.cache.frontend import FRONT_END_KINDS, FrontEndConfig
from repro.core.config import SystemConfig, pcmap_config

if TYPE_CHECKING:
    from repro.memory.policy import SchedulerPolicy

SYSTEM_NAMES: List[str] = [
    "baseline",
    "row-nr",
    "wow-nr",
    "rwow-nr",
    "rwow-rd",
    "rwow-rde",
]

#: The five systems the figures compare against the baseline.
PCMAP_SYSTEM_NAMES: List[str] = SYSTEM_NAMES[1:]

#: Prior-art comparator systems (not part of the paper's six).
COMPARATOR_SYSTEM_NAMES: List[str] = ["write-pausing", "palp-lite"]


def make_baseline(**overrides) -> SystemConfig:
    overrides.setdefault("name", "baseline")
    return SystemConfig(**overrides)


def make_write_pausing(**overrides) -> SystemConfig:
    """Prior-art comparator: baseline + read-preempts-write (paper [11])."""
    overrides.setdefault("name", "write-pausing")
    return SystemConfig(enable_write_pausing=True, **overrides)


def make_palp_lite(**overrides) -> SystemConfig:
    """PALP-style comparator: bank-parallel fine writes, no RoW/WoW."""
    overrides.setdefault("name", "palp-lite")
    overrides.setdefault("write_engine_scope", "bank")
    return pcmap_config(**overrides)


def make_row_nr(**overrides) -> SystemConfig:
    overrides.setdefault("name", "row-nr")
    return pcmap_config(enable_row=True, **overrides)


def make_wow_nr(**overrides) -> SystemConfig:
    overrides.setdefault("name", "wow-nr")
    return pcmap_config(enable_wow=True, **overrides)


def make_rwow_nr(**overrides) -> SystemConfig:
    overrides.setdefault("name", "rwow-nr")
    return pcmap_config(enable_row=True, enable_wow=True, **overrides)


def make_rwow_rd(**overrides) -> SystemConfig:
    overrides.setdefault("name", "rwow-rd")
    return pcmap_config(
        enable_row=True, enable_wow=True, rotate_data=True, **overrides
    )


def make_rwow_rde(**overrides) -> SystemConfig:
    overrides.setdefault("name", "rwow-rde")
    return pcmap_config(
        enable_row=True,
        enable_wow=True,
        rotate_data=True,
        rotate_ecc=True,
        **overrides,
    )


_FACTORIES: Dict[str, Callable[..., SystemConfig]] = {
    "baseline": make_baseline,
    "write-pausing": make_write_pausing,
    "palp-lite": make_palp_lite,
    "row-nr": make_row_nr,
    "wow-nr": make_wow_nr,
    "rwow-nr": make_rwow_nr,
    "rwow-rd": make_rwow_rd,
    "rwow-rde": make_rwow_rde,
}


def make_system(name: str, **overrides) -> SystemConfig:
    """Build one of the six evaluated systems by name.

    Keyword overrides are forwarded to the config (e.g. ``timing=...``
    for the Table III latency-ratio sweep).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; expected one of {SYSTEM_NAMES}"
        ) from None
    return factory(**overrides)


def all_systems(**overrides) -> List[SystemConfig]:
    """All six systems with shared overrides applied."""
    return [make_system(name, **overrides) for name in SYSTEM_NAMES]


# ======================================================================
# Front-end (cache tier) composition
# ======================================================================
#: Front-end kinds the CLI and sweeps accept (mirrors the cache layer's
#: :data:`~repro.cache.frontend.FRONT_END_KINDS` the way ``SYSTEM_NAMES``
#: mirrors ``_FACTORIES``).
FRONT_END_NAMES: List[str] = list(FRONT_END_KINDS)


def make_front_end(
    kind: str = "none", replacement: str = "lru",
    capacity_mb: Optional[float] = None, **overrides
) -> FrontEndConfig:
    """Build a front-end config by kind name.

    ``kind="none"`` is the historical direct-to-PCM path (nothing is
    constructed at run time); ``kind="dram"`` is the Table I 256 MB
    DRAM cache as a timed tier.  ``replacement`` selects the eviction
    policy plugin (:data:`~repro.cache.replacement.REPLACEMENT_POLICIES`).
    ``capacity_mb`` is the sizing knob behind ``--frontend-mb``: it
    derives ``size_bytes`` (so paper-scale 256 MB tiers are one flag),
    and the set/way geometry is validated by
    :class:`~repro.cache.dram_cache.DramCacheConfig` — the size must
    yield at least one whole set of 64-byte lines.  Keyword overrides
    forward to :class:`FrontEndConfig` (``mshrs``, ``writeback_buffer``,
    ``backend``) or, via ``dram_overrides`` semantics below, to the
    embedded :class:`DramCacheConfig` (``size_bytes``,
    ``associativity``, ``access_cycles``).
    """
    if kind not in FRONT_END_NAMES:
        raise ValueError(
            f"unknown front end {kind!r}; expected one of {FRONT_END_NAMES}"
        )
    dram_fields = {"size_bytes", "associativity", "access_cycles"}
    dram_overrides = {
        key: overrides.pop(key) for key in list(overrides)
        if key in dram_fields
    }
    if capacity_mb is not None:
        if "size_bytes" in dram_overrides:
            raise ValueError(
                "pass either capacity_mb or size_bytes, not both"
            )
        size_bytes = int(capacity_mb * 1024 * 1024)
        if size_bytes <= 0 or size_bytes != capacity_mb * 1024 * 1024:
            raise ValueError(
                f"capacity_mb must be a positive whole number of KiB: "
                f"{capacity_mb!r}"
            )
        dram_overrides["size_bytes"] = size_bytes
    dram = DramCacheConfig(**dram_overrides)
    return FrontEndConfig(
        kind=kind, dram=dram, replacement=replacement, **overrides
    )


def front_end_for_system(
    system_name: str, kind: str = "dram", replacement: str = "lru", **overrides
) -> FrontEndConfig:
    """Table I front-end config for one of the evaluated systems.

    The paper holds the cache hierarchy constant across all six systems
    (and both comparators) — the DRAM cache is part of the *platform*,
    not the proposal — so every system maps to the same tier config and
    this helper exists to validate the pairing and keep call sites
    honest about which system a tier is being built for.
    """
    if system_name not in _FACTORIES:
        raise ValueError(
            f"unknown system {system_name!r}; expected one of "
            f"{SYSTEM_NAMES + COMPARATOR_SYSTEM_NAMES}"
        )
    return make_front_end(kind=kind, replacement=replacement, **overrides)


# ======================================================================
# Policy-chain composition
# ======================================================================
def build_policies(config: SystemConfig) -> List["SchedulerPolicy"]:
    """Map ``config``'s feature flags to an ordered scheduler-policy chain.

    The order *is* the §IV-D2 dispatch: silent write-backs first, then a
    RoW attempt (which declines loudly), then WoW grouping — which always
    claims the step, so a trailing plain-fine policy exists only when WoW
    is off.  Comparators replace the whole stack: pausing is a single
    coarse policy, ``palp-lite`` swaps the fine fallback for its
    bank-parallel variant.
    """
    if config.enable_write_pausing:
        from repro.core.pausing import WritePausingPolicy

        return [WritePausingPolicy()]
    if not config.fine_grained_writes:
        from repro.memory.policy import CoarseWritePolicy

        return [CoarseWritePolicy()]

    from repro.core.fine import FineWritePolicy, SilentWritePolicy

    policies: List["SchedulerPolicy"] = [SilentWritePolicy()]
    if config.enable_row:
        from repro.core.row import ReadOverWritePolicy

        policies.append(ReadOverWritePolicy())
    if config.enable_wow:
        from repro.core.wow import WriteOverWritePolicy

        policies.append(WriteOverWritePolicy())
    elif config.write_engine_scope == "bank":
        from repro.core.palp import PartitionParallelWritePolicy

        policies.append(PartitionParallelWritePolicy())
    else:
        policies.append(FineWritePolicy())
    return policies
