"""Named constructors for the six evaluated systems (paper §V).

1. ``baseline``  — read-over-write priority with an 80 % write-drain
   watermark; coarse (whole-rank) writes; 9-chip ECC DIMM.
2. ``row-nr``    — RoW only; fixed layout.
3. ``wow-nr``    — WoW only; fixed layout.
4. ``rwow-nr``   — RoW + WoW; fixed layout.
5. ``rwow-rd``   — RoW + WoW; data-word rotation.
6. ``rwow-rde``  — RoW + WoW; data and ECC/PCC rotation (full PCMap).

All PCMap variants use the 10-chip geometry (8 data + ECC + PCC) because
RoW's reconstruction requires the PCC chip; ``wow-nr`` keeps the PCC chip
too so the five PCMap variants differ only in policy, matching the paper's
controlled comparison.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.config import SystemConfig, pcmap_config

SYSTEM_NAMES: List[str] = [
    "baseline",
    "row-nr",
    "wow-nr",
    "rwow-nr",
    "rwow-rd",
    "rwow-rde",
]

#: The five systems the figures compare against the baseline.
PCMAP_SYSTEM_NAMES: List[str] = SYSTEM_NAMES[1:]


def make_baseline(**overrides) -> SystemConfig:
    overrides.setdefault("name", "baseline")
    return SystemConfig(**overrides)


def make_write_pausing(**overrides) -> SystemConfig:
    """Prior-art comparator: baseline + read-preempts-write (paper [11])."""
    overrides.setdefault("name", "write-pausing")
    return SystemConfig(enable_write_pausing=True, **overrides)


def make_row_nr(**overrides) -> SystemConfig:
    overrides.setdefault("name", "row-nr")
    return pcmap_config(enable_row=True, **overrides)


def make_wow_nr(**overrides) -> SystemConfig:
    overrides.setdefault("name", "wow-nr")
    return pcmap_config(enable_wow=True, **overrides)


def make_rwow_nr(**overrides) -> SystemConfig:
    overrides.setdefault("name", "rwow-nr")
    return pcmap_config(enable_row=True, enable_wow=True, **overrides)


def make_rwow_rd(**overrides) -> SystemConfig:
    overrides.setdefault("name", "rwow-rd")
    return pcmap_config(
        enable_row=True, enable_wow=True, rotate_data=True, **overrides
    )


def make_rwow_rde(**overrides) -> SystemConfig:
    overrides.setdefault("name", "rwow-rde")
    return pcmap_config(
        enable_row=True,
        enable_wow=True,
        rotate_data=True,
        rotate_ecc=True,
        **overrides,
    )


_FACTORIES: Dict[str, Callable[..., SystemConfig]] = {
    "baseline": make_baseline,
    "write-pausing": make_write_pausing,
    "row-nr": make_row_nr,
    "wow-nr": make_wow_nr,
    "rwow-nr": make_rwow_nr,
    "rwow-rd": make_rwow_rd,
    "rwow-rde": make_rwow_rde,
}


def make_system(name: str, **overrides) -> SystemConfig:
    """Build one of the six evaluated systems by name.

    Keyword overrides are forwarded to the config (e.g. ``timing=...``
    for the Table III latency-ratio sweep).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; expected one of {SYSTEM_NAMES}"
        ) from None
    return factory(**overrides)


def all_systems(**overrides) -> List[SystemConfig]:
    """All six systems with shared overrides applied."""
    return [make_system(name, **overrides) for name in SYSTEM_NAMES]
