"""PCMap channel controller: a thin composition root (paper §IV).

The scheduling logic that used to live here as one 767-line monolith is
now a policy chain (see :mod:`repro.memory.policy`):

* :mod:`repro.core.fine` — the fine-grained write engine plus the
  silent-write and plain fine-write policies (§IV-A2);
* :mod:`repro.core.row` — RoW windows, overlap-read admission, deferred
  verify and rollback (§IV-B);
* :mod:`repro.core.wow` — two-pass WoW group admission and service
  (§IV-C);
* :mod:`repro.core.palp` — the PALP-style partition-parallel comparator.

:func:`repro.core.systems.build_policies` maps the config's feature
flags to the chain, so the §IV-D2 dispatch order (silent -> RoW ->
WoW -> plain fine) is the chain order rather than an if/elif ladder.

What remains here is only what is genuinely per-controller state shared
by every fine-grained policy: the :class:`~repro.core.fine.FineWriteEngine`,
the DIMM status registers, and the oldest-*ready*-first write-candidate
discipline that replaces the baseline's strict FIFO.
"""

from __future__ import annotations

from typing import Optional

from repro.core.fine import FineWriteEngine
from repro.core.status import DimmStatusRegister
from repro.memory.controller import MemoryController
from repro.memory.policy import PolicyChain, WriteContext
from repro.memory.request import MemoryRequest


class PCMapController(MemoryController):
    """Controller for the five PCMap system variants (and ``palp-lite``)."""

    def _build_policy_chain(self) -> PolicyChain:
        if not self.config.fine_grained_writes:
            raise ValueError(
                "PCMapController requires fine_grained_writes; "
                "use MemoryController for the baseline"
            )
        # Shared resources the fine-grained policies bind against; they
        # must exist before the chain is composed.
        self.fine = FineWriteEngine(
            self, scope=self.config.write_engine_scope
        )
        self.status_registers = [
            DimmStatusRegister(rank, self.timing) for rank in self.ranks
        ]
        #: ``(state, earliest)`` memo of a failed candidate scan; valid
        #: while the summed version counters still match (see
        #: ``select_write_candidate``).
        self._candidate_scan_memo: Optional[tuple] = None
        return super()._build_policy_chain()

    @property
    def _inflight_writes(self) -> int:
        """Fine-grained writes currently in flight (engine-owned count)."""
        return self.fine.inflight

    # ==================================================================
    # Write-candidate discipline
    # ==================================================================
    def select_write_candidate(self, now: int) -> Optional[WriteContext]:
        """Oldest-*ready*-first over the write queue.

        Strict FIFO would stall whenever the head's (rotated) chips are
        still finishing an earlier window's ECC/PCC update even though
        younger writes could proceed on idle chips.  The write-engine
        token gates dirty writes only; silent (zero-dirty) candidates
        need their data chips readable, not the engine.
        """
        fine = self.fine
        if fine.inflight >= self.config.max_inflight_writes:
            return None  # completions will re-kick
        ranks = self.ranks
        # Whole-scan memo: every input of the scan (queue membership,
        # chip reservations, engine-token holds) bumps a monotonic
        # counter, so an unchanged sum means an identical scan.  A failed
        # scan that found nothing ready before ``earliest`` therefore
        # stays failed while ``now`` has not reached it — the wake-up
        # armed here is the same one the full rescan would arm.
        state = self.write_q.version + fine.version
        for r in ranks:
            state += r.version
        memo = self._candidate_scan_memo
        if memo is not None and memo[0] == state:
            earliest = memo[1]
            if earliest is None:
                return None
            if earliest > now:
                self._note_wake(earliest)
                return None
        head: Optional[MemoryRequest] = None
        decoded = None
        earliest: Optional[int] = None
        # Hot loop: runs once per scheduler step over every queued write.
        # Decode and chip sets come from the submit-time caches on the
        # request (with a decode fallback for directly-pushed test
        # requests); locals are hoisted and ``max`` is spelled as a
        # comparison — this function dominated the end-to-end profile.
        rank_scope = fine._rank_scope
        engine_free_get = fine._free.get
        mapper_decode = self.mapper.decode
        layout = self.layout
        for req in self.write_q.pending:
            if req.start_service >= 0:
                continue  # issued outside the tracked paths (tests)
            candidate = req.decoded
            if candidate is None:
                candidate = mapper_decode(req.address)
            rank = ranks[candidate.rank]
            version = rank.version
            cached = req.ready_cache
            if not req.dirty_mask:
                if cached is not None and cached[0] == version:
                    ready = cached[1]
                else:
                    chips = req.chips
                    if chips is None:
                        chips = layout.all_data_chips(candidate.line_address)
                    ready = rank.read_ready_time(chips, candidate.bank)
                    req.ready_cache = (version, ready)
            else:
                if cached is not None and cached[0] == version:
                    ready = cached[1]
                else:
                    chips = req.chips
                    if chips is None:
                        chips = layout.dirty_chips(
                            candidate.line_address, req.dirty_mask
                        )
                    ready = rank.write_ready_time(chips, candidate.bank)
                    req.ready_cache = (version, ready)
                # fine.free_at, inlined: the scan visits every queued
                # dirty write per step and the call overhead showed up.
                if rank_scope:
                    engine_free = engine_free_get(candidate.rank, 0)
                else:
                    engine_free = engine_free_get(
                        (candidate.rank, candidate.bank), 0
                    )
                if engine_free > ready:
                    ready = engine_free
            if ready <= now:
                head, decoded = req, candidate
                break
            if earliest is None or ready < earliest:
                earliest = ready
        if head is None or decoded is None:
            self._candidate_scan_memo = (state, earliest)
            if earliest is not None:
                self._note_wake(earliest)
            return None
        return WriteContext(now, head, decoded)

    def _complete_write(self, req: MemoryRequest) -> None:
        self.fine.note_write_complete()
        super()._complete_write(req)
