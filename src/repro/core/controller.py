"""PCMap memory controller: fine-grained writes, RoW and WoW (paper §IV).

Subclasses the baseline controller and replaces only the write-issue path.
The scheduling decision at the head of the write queue follows §IV-D2:

1. head write has one essential word and the read queue is non-empty and
   RoW is enabled  -> open a **RoW window**: issue the write as a two-step
   fine-grained write (data+ECC, then PCC) and overlap reads with it,
   reconstructing any word blocked by a busy chip from the PCC parity;
2. otherwise, if WoW is enabled -> build a **WoW group**: consolidate the
   head write with younger writes whose (rotated) dirty chip sets are
   disjoint and idle;
3. otherwise -> a plain fine-grained write of the head.

All chip occupancy flows through the per-chip reservations of
:class:`repro.memory.rank.RankState`; ECC and PCC word updates reserve
their chip like any other array write, so the fixed-ECC-chip serialisation
the paper describes (and rotation removes) emerges from the resource
model rather than from special-case code.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.status import DimmStatusRegister
from repro.ecc import hamming, parity
from repro.memory.address import DecodedAddress
from repro.memory.bus import BusDirection
from repro.memory.controller import MemoryController
from repro.memory.rank import RankState
from repro.memory.request import (
    MemoryRequest,
    ServiceClass,
    WORDS_PER_LINE,
)
from repro.sim.metrics import WriteWindow
from repro.telemetry import EventType, TraceEvent


class PCMapController(MemoryController):
    """Controller for the five PCMap system variants."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if not self.config.fine_grained_writes:
            raise ValueError(
                "PCMapController requires fine_grained_writes; "
                "use MemoryController for the baseline"
            )
        metrics = self.telemetry.metrics
        self._m_row_attempts = metrics.counter("row.attempts")
        self._m_row_windows = metrics.counter("row.windows")
        self._m_row_reads = metrics.counter("row.reads")
        self._m_row_overlap = metrics.counter("row.overlap_reads")
        self._m_wow_groups = metrics.counter("wow.groups")
        self._m_wow_members = metrics.counter("wow.member_writes")
        self._m_rollbacks = metrics.counter("rollbacks")
        self._m_verifications = metrics.counter("verifications")
        self._m_row_declined = {}  # reason -> cached Counter
        self.status_registers = [
            DimmStatusRegister(rank, self.timing) for rank in self.ranks
        ]
        self._inflight_writes = 0
        # One write *group* in array-service per rank at a time: the PCM
        # write-power budget serialises array writes rank-wide (DESIGN.md
        # §5); WoW packs disjoint writes into the single service slot and
        # RoW overlaps reads with it, which is exactly the paper's model.
        self._write_engine_free = [0] * len(self.ranks)
        # The currently open RoW window per rank (window, reads issued);
        # reads arriving while it is open are overlapped immediately.
        self._active_row_window: List[Optional[WriteWindow]] = [
            None
        ] * len(self.ranks)
        self._active_row_reads = [0] * len(self.ranks)

    # ==================================================================
    # Request intake: reads arriving mid-window join the open RoW window
    # ==================================================================
    def submit(self, request: MemoryRequest) -> None:
        super().submit(request)
        if not request.is_read or request.completion >= 0:
            return
        if request not in self.read_q:
            return  # already issued or forwarded by the base path
        decoded = self.mapper.decode(request.address)
        window = self._active_row_window[decoded.rank]
        if window is None or window.end <= self.engine.now:
            self._active_row_window[decoded.rank] = None
            return
        self._overlap_reads(decoded.rank, window, self.engine.now)

    # ==================================================================
    # Write-issue dispatch (§IV-D2)
    # ==================================================================
    def _try_issue_write(self, now: int) -> bool:
        if self.write_q.empty:
            return False
        if self._inflight_writes >= self.config.max_inflight_writes:
            return False  # completions will re-kick

        # Oldest-*ready*-first: strict FIFO would stall whenever the head's
        # (rotated) chips are still finishing an earlier window's ECC/PCC
        # update even though younger writes could proceed on idle chips.
        head: Optional[MemoryRequest] = None
        decoded: Optional[DecodedAddress] = None
        earliest: Optional[int] = None
        for req in self.write_q.entries():
            if req.start_service >= 0:
                continue  # already in flight (entry held until completion)
            candidate = self.mapper.decode(req.address)
            rank = self.ranks[candidate.rank]
            engine_free = self._write_engine_free[candidate.rank]
            if req.dirty_count == 0:
                chips = self.layout.all_data_chips(candidate.line_address)
                ready = rank.read_ready_time(chips, candidate.bank)
            else:
                chips = self.layout.dirty_chips(
                    candidate.line_address, req.dirty_mask
                )
                ready = max(
                    engine_free,
                    rank.write_ready_time(chips, candidate.bank),
                )
            if ready <= now:
                head, decoded = req, candidate
                break
            if earliest is None or ready < earliest:
                earliest = ready
        if head is None or decoded is None:
            if earliest is not None:
                self._note_wake(earliest)
            return False

        if head.dirty_count == 0:
            self._issue_silent_write(head, decoded, now)
            return True
        use_row = False
        if self.config.enable_row:
            # The decline reason mirrors the short-circuit order of the
            # scheduling predicate (§IV-D2) so traces explain decisions.
            if head.dirty_count > self.config.row_max_essential_words:
                decline = "too-many-essential-words"
            elif self.read_q.empty:
                decline = "no-queued-reads"
            elif self.config.enable_wow and self.write_q.above_high_watermark:
                # Under critical write pressure a WoW group moves more
                # data than a RoW window; prefer RoW once off-peak.
                decline = "write-pressure"
            elif not self._row_window_useful(head, decoded, now):
                decline = "no-overlappable-read"
            else:
                decline = ""
                use_row = True
            self._m_row_attempts.inc()
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    EventType.ROW_ATTEMPT,
                    tick=now,
                    channel=self.channel_id,
                    rank=decoded.rank,
                    req_id=head.req_id,
                ))
            if decline:
                self._row_declined(decline)
                if self.tracer.enabled:
                    self.tracer.emit(TraceEvent(
                        EventType.ROW_DECLINE,
                        tick=now,
                        channel=self.channel_id,
                        rank=decoded.rank,
                        req_id=head.req_id,
                        reason=decline,
                    ))
        if use_row:
            data_end = self._issue_row_window(head, decoded, now)
        elif self.config.enable_wow:
            data_end = self._issue_wow_group(head, decoded, now)
        else:
            window = self._open_window(-1, -1)
            _start, _data_end, data_end = self._issue_fine_write(
                head, decoded, now, window=window
            )
        self._write_engine_free[decoded.rank] = max(
            self._write_engine_free[decoded.rank], data_end
        )
        return True

    def _row_declined(self, reason: str) -> None:
        """Bump the per-reason decline counter (cached per reason)."""
        counter = self._m_row_declined.get(reason)
        if counter is None:
            counter = self.telemetry.metrics.counter(f"row.declined.{reason}")
            self._m_row_declined[reason] = counter
        counter.inc()

    # ==================================================================
    # Fine-grained writes (§IV-A2)
    # ==================================================================
    def _issue_silent_write(
        self, req: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> None:
        """Zero-dirty write-back: read-before-write finds nothing to change.

        The chips still perform the compare, which costs one array read on
        the line's data chips but never engages the write circuitry.
        """
        rank = self.ranks[decoded.rank]
        chips = self.layout.all_data_chips(decoded.line_address)
        start = max(
            now + self.timing.status_poll_ticks,
            rank.read_ready_time(chips, decoded.bank),
        )
        end = start + self.timing.array_read_ticks
        rank.log_label = f"Cmp-{req.req_id}"
        rank.reserve_read(chips, decoded.bank, end, decoded.row, start=start)
        req.service_class = ServiceClass.SILENT
        # Zero-activity window: silent write-backs count toward IRLP.
        self._open_window(start, end)
        self._begin_inflight_write(req, start, end, decoded)

    def _issue_fine_write(
        self,
        req: MemoryRequest,
        decoded: DecodedAddress,
        now: int,
        window: WriteWindow,
        defer_pcc: bool = False,
    ) -> Tuple[int, int, int]:
        """Issue one write touching only its essential-word chips.

        Reserves each dirty chip for transfer + read-before-write + array
        write, the ECC chip for its word update, and the PCC chip either
        immediately or (``defer_pcc``, the RoW two-step) once the data
        step finishes.  Returns ``(start, data_end, service_end)``; the
        service end covers the ECC/PCC updates, which without rotation
        serialise on the fixed code chips and stretch the window exactly
        as the paper's Figure 5(d) shows.

        Chip activity is attributed to ``window`` for IRLP accounting.
        """
        rank = self.ranks[decoded.rank]
        line = decoded.line_address
        bank, row = decoded.bank, decoded.row
        start = now + self.timing.status_poll_ticks

        data_end = start
        window_start: Optional[int] = None
        for word in req.dirty_words:
            chip = self.layout.data_chip(line, word)
            chip_start = max(start, rank.chips[chip].write_ready(bank))
            _xs, xfer_end = self.bus.reserve_partial(
                chip, BusDirection.WRITE, chip_start
            )
            # The word-write latency includes the chip's internal
            # read-before-write (Figure 5 charges no separate activation).
            array_start = xfer_end
            ticks = self._word_write_ticks(req, word)
            chip_end = array_start + ticks
            rank.log_label = f"Wr-{req.req_id}"
            rank.reserve_chip_write(chip, bank, chip_end, row, start=array_start)
            self.stats.record_chip_write(chip)
            # Route through _record_activity so concurrent windows (other
            # in-flight writes) see this chip as busy too — IRLP counts
            # every chip serving *some* request during a write window.
            self._record_activity((chip,), array_start, chip_end)
            data_end = max(data_end, chip_end)
            if window_start is None or array_start < window_start:
                window_start = array_start
        window.absorb(window_start if window_start is not None else start, data_end)

        ecc_end = self._issue_code_update(
            rank, self.layout.ecc_chip(line), bank, row, earliest=start
        )
        pcc_chip = self.layout.pcc_chip(line)
        completion = max(data_end, ecc_end)

        if pcc_chip is None:
            window.extend(completion)
            window.note_service_end(completion)
            self._begin_inflight_write(req, start, completion, decoded)
        elif defer_pcc:
            # RoW step 2: the PCC update starts right after the data step
            # so the chip stays free for reconstruction meanwhile.  The
            # reservation is made *at* data_end (not now) so overlapped
            # reads can use the PCC chip during step 1.
            self._begin_inflight_write(
                req, start, completion, decoded, hold_completion=True
            )

            def _step_two() -> None:
                pcc_end = self._issue_code_update(
                    rank, pcc_chip, bank, row, earliest=self.engine.now
                )
                final = max(completion, pcc_end)
                window.extend(final)
                window.note_service_end(final)
                self.engine.schedule_at(
                    final, lambda: self._complete_write(req)
                )

            self.engine.schedule_at(data_end, _step_two)
        else:
            pcc_end = self._issue_code_update(
                rank, pcc_chip, bank, row, earliest=start
            )
            completion = max(completion, pcc_end)
            window.extend(completion)
            window.note_service_end(completion)
            self._begin_inflight_write(req, start, completion, decoded)
        return start, data_end, completion

    def _issue_code_update(
        self, rank: RankState, chip: int, bank: int, row: int, earliest: int
    ) -> int:
        """Reserve an ECC/PCC word update on ``chip``; returns its end tick.

        The update is a differential PCM word write (cheaper than a full
        data word, see TimingParams.ecc_update_fraction).  Updates queue
        up behind whatever the chip is already doing — this is the
        serialisation that pins down WoW without ECC rotation.
        """
        chip_start = max(earliest, rank.chips[chip].write_ready(bank))
        _xs, xfer_end = self.bus.reserve_partial(
            chip, BusDirection.WRITE, chip_start
        )
        # ecc_update_ticks is all-inclusive (read-modify-write of the
        # code word), mirroring the data-word write cost model.
        end = xfer_end + self.timing.ecc_update_ticks
        rank.log_label = "code-update"
        rank.reserve_chip_write(chip, bank, end, row, start=xfer_end)
        self.stats.record_chip_write(chip)
        return end

    def _begin_inflight_write(
        self,
        req: MemoryRequest,
        start: int,
        completion: int,
        decoded: DecodedAddress,
        hold_completion: bool = False,
    ) -> None:
        """Common issue bookkeeping; schedules completion unless held.

        The queue entry stays until completion (see the base class note).
        """
        req.start_service = start
        if self.storage is not None and req.new_words is not None:
            self.storage.write_line(
                decoded.line_address, req.new_words, req.dirty_mask
            )
        self._inflight_writes += 1
        if not hold_completion:
            self.engine.schedule_at(
                completion, lambda: self._complete_write(req)
            )

    def _complete_write(self, req: MemoryRequest) -> None:
        self._inflight_writes -= 1
        super()._complete_write(req)

    # ==================================================================
    # WoW: write-over-write consolidation (§IV-C)
    # ==================================================================
    def _issue_wow_group(
        self, head: MemoryRequest, decoded_head: DecodedAddress, now: int
    ) -> int:
        """Consolidate chip-disjoint writes; returns the group's data end.

        Members may target any bank of the seed's rank — §IV-D2's policy
        selects "one or more write requests that can be parallelized with
        [the] on-going write", constrained only by pairwise-disjoint
        (rotated) dirty-chip sets that are idle now.
        """
        rank = self.ranks[decoded_head.rank]

        def chip_sets(req, decoded):
            line = decoded.line_address
            data = set(self.layout.dirty_chips(line, req.dirty_mask))
            code = {self.layout.ecc_chip(line)}
            pcc = self.layout.pcc_chip(line)
            if pcc is not None:
                code.add(pcc)
            return data, code

        head_data, head_code = chip_sets(head, decoded_head)
        members: List[Tuple[MemoryRequest, DecodedAddress]] = [
            (head, decoded_head)
        ]
        occupied_all = head_data | head_code
        budget = self.config.max_inflight_writes - self._inflight_writes
        limit = min(self.config.wow_max_group, budget)

        # Two-pass greedy: first pack members whose data *and* code chips
        # are disjoint from the group (their whole service runs in
        # parallel — what rotation makes possible); then admit members
        # whose data chips are free but whose ECC/PCC updates collide and
        # serialise within the window (Figure 5(d), the NR behaviour).
        for require_code_disjoint in (True, False):
            for req in self.write_q.entries():
                if len(members) >= limit:
                    break
                if (
                    req is head
                    or req.dirty_count == 0
                    or req.start_service >= 0
                    or any(req is member for member, _d in members)
                ):
                    continue
                decoded = self.mapper.decode(req.address)
                if decoded.rank != decoded_head.rank:
                    continue
                data, code = chip_sets(req, decoded)
                if occupied_all.intersection(data):
                    continue
                if require_code_disjoint and occupied_all.intersection(code):
                    continue
                if rank.write_ready_time(data, decoded.bank) > now:
                    continue
                members.append((req, decoded))
                occupied_all.update(data | code)

        window = self._open_window(-1, -1)
        grouped = len(members) > 1
        if grouped and self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.WOW_OPEN,
                tick=now,
                channel=self.channel_id,
                rank=decoded_head.rank,
                req_id=head.req_id,
                extra={"group_size": len(members)},
            ))
            for req, _decoded in members[1:]:
                self.tracer.emit(TraceEvent(
                    EventType.WOW_JOIN,
                    tick=now,
                    channel=self.channel_id,
                    rank=decoded_head.rank,
                    req_id=req.req_id,
                ))
        group_service_end = now
        for req, decoded in members:
            if grouped:
                req.service_class = ServiceClass.WOW_MEMBER
            _start, _data_end, service_end = self._issue_fine_write(
                req, decoded, now, window=window
            )
            # The write engine is held through the serialised ECC/PCC
            # updates of the whole group (Figure 5(d)): without rotation
            # this is what limits WoW's bandwidth gain.
            group_service_end = max(group_service_end, service_end)
        if grouped:
            self.stats.wow_groups += 1
            self.stats.wow_member_writes += len(members)
            self._m_wow_groups.inc()
            self._m_wow_members.inc(len(members))
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    EventType.WOW_CLOSE,
                    tick=now,
                    channel=self.channel_id,
                    rank=decoded_head.rank,
                    req_id=head.req_id,
                    end=group_service_end,
                    extra={"group_size": len(members)},
                ))
        return group_service_end

    # ==================================================================
    # RoW: read-over-write (§IV-B)
    # ==================================================================
    def _row_window_useful(
        self, head: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> bool:
        """Would opening a RoW window for ``head`` serve any queued read?

        Cheap pre-check so a WoW slot is not wasted on a window no read
        can join (e.g. every queued read needs two busy chips).
        """
        rank = self.ranks[decoded.rank]
        head_chips = set(
            self.layout.dirty_chips(decoded.line_address, head.dirty_mask)
        )
        busy = set(rank.busy_chips_at(now)) | head_chips
        for req in self.read_q:
            read_decoded = self.mapper.decode(req.address)
            if read_decoded.rank != decoded.rank:
                continue
            line = read_decoded.line_address
            word_chips = self.layout.all_data_chips(line)
            blocked = [c for c in word_chips if c in busy]
            pcc_chip = self.layout.pcc_chip(line)
            ecc_chip = self.layout.ecc_chip(line)
            if not blocked and ecc_chip not in busy:
                return True  # a plain overlapped read fits
            if (
                len(blocked) == 1
                and pcc_chip is not None
                and pcc_chip not in busy
            ):
                return True  # reconstruction fits
        return False

    def _issue_row_window(
        self, head: MemoryRequest, decoded: DecodedAddress, now: int
    ) -> int:
        """Two-step fine write plus overlapped reads; returns data end.

        The engine frees at the *data* end: the PCC step runs on the PCC
        chip only, so the next write's chips can proceed concurrently
        (chip reservations serialise any PCC contention).
        """
        window = self._open_window(-1, -1)
        _start, data_end, _service_end = self._issue_fine_write(
            head, decoded, now, window=window, defer_pcc=True
        )
        self._m_row_windows.inc()
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.ROW_SERVE,
                tick=now,
                channel=self.channel_id,
                rank=decoded.rank,
                req_id=head.req_id,
                start=window.start,
                end=window.end,
            ))
        self._active_row_window[decoded.rank] = window
        self._active_row_reads[decoded.rank] = 0
        self._overlap_reads(decoded.rank, window, now)
        return data_end

    def _overlap_reads(self, rank_index: int, window: WriteWindow, now: int) -> None:
        """Serve reads concurrently with the open write window.

        Walks the read queue oldest-first.  Each read either fits without
        touching any write-busy chip (a plain overlapped read) or has
        exactly one data word blocked, in which case the word is
        reconstructed from the other seven plus the PCC word and the
        SECDED check is deferred (§IV-B3).
        """
        rank = self.ranks[rank_index]
        issued = 0
        for req in list(self.read_q):
            if (
                self._active_row_reads[rank_index] + issued
                >= self.config.row_max_overlapped_reads
            ):
                break
            if req not in self.read_q:
                # Issuing a read frees queue space, which can re-enter
                # this method through the CPU's back-pressure waiter; the
                # nested call may have issued entries of our snapshot.
                continue
            decoded = self.mapper.decode(req.address)
            if decoded.rank != rank_index:
                continue
            line = decoded.line_address
            word_chips = self.layout.all_data_chips(line)
            ecc_chip = self.layout.ecc_chip(line)
            pcc_chip = self.layout.pcc_chip(line)

            # Overlapped reads must *finish* inside the window (plus the
            # PCC step-2 tail, when the data chips are free anyway) so
            # their own tails never stall the next write service.
            read_cost = (
                rank.activation_ticks(word_chips, decoded.bank, decoded.row)
                + self.timing.read_io_ticks
            )
            deadline = window.end + self.timing.ecc_update_ticks

            # Option A: wait for every chip (leftover ECC/PCC updates from
            # earlier windows clear quickly) and read normally.
            normal_chips = word_chips + (ecc_chip,)
            normal_start = max(
                now, rank.read_ready_time(normal_chips, decoded.bank)
            )
            # Option B: skip the single most-contended data chip (the one
            # the ongoing write holds) and reconstruct its word from PCC.
            recon_start: Optional[int] = None
            missing: Optional[int] = None
            if pcc_chip is not None:
                missing = max(
                    range(WORDS_PER_LINE),
                    key=lambda w: rank.chips[word_chips[w]].write_busy_until,
                )
                recon_chips = tuple(
                    chip for w, chip in enumerate(word_chips) if w != missing
                ) + (pcc_chip,)
                candidate = max(
                    now, rank.read_ready_time(recon_chips, decoded.bank)
                )
                # Reconstruction only pays off while the skipped chip is
                # actually still write-busy at that start time.
                if rank.chips[word_chips[missing]].write_busy_until > candidate:
                    recon_start = candidate

            if recon_start is not None and recon_start < normal_start:
                if recon_start + read_cost > deadline:
                    continue
                assert missing is not None
                recon_chips = tuple(
                    chip for w, chip in enumerate(word_chips) if w != missing
                ) + (pcc_chip,)
                self._issue_overlap_read(req, decoded, recon_chips, missing, now)
                self.stats.row_reads += 1
                self._m_row_reads.inc()
                issued += 1
            elif normal_start + read_cost <= deadline:
                self._issue_overlap_read(req, decoded, normal_chips, None, now)
                self.stats.row_normal_overlap_reads += 1
                self._m_row_overlap.inc()
                issued += 1
        self._active_row_reads[rank_index] += issued

    def _issue_overlap_read(
        self,
        req: MemoryRequest,
        decoded: DecodedAddress,
        chips: Tuple[int, ...],
        missing_word: Optional[int],
        now: int,
    ) -> None:
        """Issue a read over the partial buses, reconstructing if needed."""
        rank = self.ranks[decoded.rank]
        line, bank, row = decoded.line_address, decoded.bank, decoded.row
        start = max(now, rank.read_ready_time(chips, bank))
        activation = rank.activation_ticks(chips, bank, row)
        cas_ready = start + activation + self.timing.cycles(self.timing.tCL)
        end = cas_ready
        for chip in chips:
            _xs, xfer_end = self.bus.reserve_partial(
                chip, BusDirection.READ, cas_ready
            )
            end = max(end, xfer_end)
        rank.log_label = f"Rd-{req.req_id}"
        rank.reserve_read(chips, bank, end, row, start=start)

        req.start_service = start
        req.delayed_by_write = True  # it arrived while a write was draining
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                EventType.REQUEST_ISSUE,
                tick=now,
                channel=self.channel_id,
                rank=decoded.rank,
                bank=bank,
                req_id=req.req_id,
                start=start,
                end=end,
                kind="read",
                reason=(
                    "row-overlap" if missing_word is None
                    else "row-reconstruction"
                ),
            ))
        self._record_data_read_activity(decoded, missing_word, start, end)

        if missing_word is None:
            req.service_class = ServiceClass.NORMAL
            if self.storage is not None:
                req.data_words = self.storage.read_line(line).words
            self.read_q.remove(req)
            self.engine.schedule_at(end, lambda: self._complete_read(req))
            return

        req.service_class = ServiceClass.ROW_OVERLAP
        if self.storage is not None:
            stored = self.storage.read_line(line)
            partial = [
                None if w == missing_word else stored.words[w]
                for w in range(WORDS_PER_LINE)
            ]
            req.data_words = parity.reconstruct_word(partial, stored.pcc)
        self.read_q.remove(req)
        self.engine.schedule_at(end, lambda: self._complete_read(req))
        self._schedule_verify(req, decoded, missing_word, end)

    def _record_data_read_activity(
        self,
        decoded: DecodedAddress,
        missing_word: Optional[int],
        start: int,
        end: int,
    ) -> None:
        """IRLP accounting: the data chips a read keeps busy."""
        chips = tuple(
            chip
            for w, chip in enumerate(
                self.layout.all_data_chips(decoded.line_address)
            )
            if w != missing_word
        )
        self._record_activity(chips, start, end)

    # ------------------------------------------------------------------
    # Deferred verification and rollback (§IV-B3)
    # ------------------------------------------------------------------
    def _schedule_verify(
        self,
        req: MemoryRequest,
        decoded: DecodedAddress,
        missing_word: int,
        read_end: int,
    ) -> None:
        """Arrange the SECDED check once the busy chip frees up."""
        rank = self.ranks[decoded.rank]
        chip = self.layout.data_chip(decoded.line_address, missing_word)
        ecc_chip = self.layout.ecc_chip(decoded.line_address)

        def _run_verify() -> None:
            now = self.engine.now
            chips = (chip, ecc_chip)
            start = max(now, rank.read_ready_time(chips, decoded.bank))
            activation = rank.activation_ticks(
                chips, decoded.bank, decoded.row
            )
            end = start + activation + self.timing.read_io_ticks
            rank.log_label = f"Vfy-{req.req_id}"
            rank.reserve_read(chips, decoded.bank, end, decoded.row, start=start)
            self.engine.schedule_at(end, lambda: self._finish_verify(req, decoded, missing_word))

        wake_at = max(
            read_end, rank.chips[chip].write_busy_until, self.engine.now
        )
        self.engine.schedule_at(wake_at, _run_verify)

    def _finish_verify(
        self, req: MemoryRequest, decoded: DecodedAddress, missing_word: int
    ) -> None:
        """Complete the deferred check; decide whether a rollback is due."""
        now = self.engine.now
        req.verify_completion = now
        self.stats.verify_count += 1
        self._m_verifications.inc()

        corrupted = False
        if self.storage is not None and req.data_words is not None:
            stored = self.storage.read_line(decoded.line_address)
            result = hamming.decode(
                req.data_words[missing_word], stored.checks[missing_word]
            )
            corrupted = (
                not result.ok or result.data != stored.words[missing_word]
                or req.data_words[missing_word] != stored.words[missing_word]
            )
        # Statistical model: the CPU consumed the value before this check
        # with the workload's probability (Table IV's rollback rates).
        consumed_early = self.rng.random() < self.config.row_rollback_rate
        rollback = corrupted or consumed_early
        if rollback:
            req.rolled_back = True
            self.stats.rollbacks += 1
            self._m_rollbacks.inc()
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    EventType.ROLLBACK,
                    tick=now,
                    channel=self.channel_id,
                    rank=decoded.rank,
                    req_id=req.req_id,
                    reason="corrupted" if corrupted else "consumed-early",
                ))
        if req.on_verify is not None:
            req.on_verify(req, rollback)
        self._kick()
