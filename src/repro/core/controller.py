"""PCMap channel controller: a thin composition root (paper §IV).

The scheduling logic that used to live here as one 767-line monolith is
now a policy chain (see :mod:`repro.memory.policy`):

* :mod:`repro.core.fine` — the fine-grained write engine plus the
  silent-write and plain fine-write policies (§IV-A2);
* :mod:`repro.core.row` — RoW windows, overlap-read admission, deferred
  verify and rollback (§IV-B);
* :mod:`repro.core.wow` — two-pass WoW group admission and service
  (§IV-C);
* :mod:`repro.core.palp` — the PALP-style partition-parallel comparator.

:func:`repro.core.systems.build_policies` maps the config's feature
flags to the chain, so the §IV-D2 dispatch order (silent -> RoW ->
WoW -> plain fine) is the chain order rather than an if/elif ladder.

What remains here is only what is genuinely per-controller state shared
by every fine-grained policy: the :class:`~repro.core.fine.FineWriteEngine`,
the DIMM status registers, and the oldest-*ready*-first write-candidate
discipline that replaces the baseline's strict FIFO.
"""

from __future__ import annotations

from typing import Optional

from repro.core.fine import FineWriteEngine
from repro.core.status import DimmStatusRegister
from repro.memory.controller import MemoryController
from repro.memory.policy import PolicyChain, WriteContext
from repro.memory.request import MemoryRequest


class PCMapController(MemoryController):
    """Controller for the five PCMap system variants (and ``palp-lite``)."""

    def _build_policy_chain(self) -> PolicyChain:
        if not self.config.fine_grained_writes:
            raise ValueError(
                "PCMapController requires fine_grained_writes; "
                "use MemoryController for the baseline"
            )
        # Shared resources the fine-grained policies bind against; they
        # must exist before the chain is composed.
        self.fine = FineWriteEngine(
            self, scope=self.config.write_engine_scope
        )
        self.status_registers = [
            DimmStatusRegister(rank, self.timing) for rank in self.ranks
        ]
        return super()._build_policy_chain()

    @property
    def _inflight_writes(self) -> int:
        """Fine-grained writes currently in flight (engine-owned count)."""
        return self.fine.inflight

    # ==================================================================
    # Write-candidate discipline
    # ==================================================================
    def select_write_candidate(self, now: int) -> Optional[WriteContext]:
        """Oldest-*ready*-first over the write queue.

        Strict FIFO would stall whenever the head's (rotated) chips are
        still finishing an earlier window's ECC/PCC update even though
        younger writes could proceed on idle chips.  The write-engine
        token gates dirty writes only; silent (zero-dirty) candidates
        need their data chips readable, not the engine.
        """
        if self.fine.inflight >= self.config.max_inflight_writes:
            return None  # completions will re-kick
        head: Optional[MemoryRequest] = None
        decoded = None
        earliest: Optional[int] = None
        for req in self.write_q.entries():
            if req.start_service >= 0:
                continue  # already in flight (entry held until completion)
            candidate = self.mapper.decode(req.address)
            rank = self.ranks[candidate.rank]
            engine_free = self.fine.free_at(candidate)
            if req.dirty_count == 0:
                chips = self.layout.all_data_chips(candidate.line_address)
                ready = rank.read_ready_time(chips, candidate.bank)
            else:
                chips = self.layout.dirty_chips(
                    candidate.line_address, req.dirty_mask
                )
                ready = max(
                    engine_free,
                    rank.write_ready_time(chips, candidate.bank),
                )
            if ready <= now:
                head, decoded = req, candidate
                break
            if earliest is None or ready < earliest:
                earliest = ready
        if head is None or decoded is None:
            if earliest is not None:
                self._note_wake(earliest)
            return None
        return WriteContext(now, head, decoded)

    def _complete_write(self, req: MemoryRequest) -> None:
        self.fine.note_write_complete()
        super()._complete_write(req)
