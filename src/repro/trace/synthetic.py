"""Synthetic main-memory trace generation.

The paper evaluates with gem5-captured SPEC/PARSEC streams; offline we
synthesise statistically equivalent post-LLC request streams from the
:class:`~repro.trace.workloads.WorkloadProfile` parameters:

* arrival density from RPKI/WPKI (geometric instruction gaps),
* bursty write-backs (LLC evictions arrive in waves),
* sequential streams for row-buffer/bank locality plus a random component,
* dirty-word masks drawn from the profile's Figure-2 distribution with
  §IV-C2's same-offset correlation between successive write-backs,
* read/write address affinity (dirty evictions of recently-read lines).

The generator is deterministic per (profile, seed, core); every draw goes
through one ``random.Random`` instance.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

from repro.memory.request import LINE_BYTES, WORDS_PER_LINE
from repro.trace.record import AccessKind, TraceRecord
from repro.trace.workloads import WorkloadKind, WorkloadProfile


class SyntheticTraceGenerator:
    """Endless per-core stream of :class:`TraceRecord`.

    ``core_id`` / ``n_cores`` partition the address space for
    multi-programmed workloads (independent programs own disjoint
    footprints); multi-threaded workloads share one footprint.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 1,
        core_id: int = 0,
        n_cores: int = 8,
        capacity_lines: int = (8 * 1024 ** 3) // LINE_BYTES,
    ):
        self.profile = profile
        self.core_id = core_id
        self.n_cores = max(1, n_cores)
        self.capacity_lines = capacity_lines
        # zlib.crc32, not hash(): str hashes are randomised per process
        # (PYTHONHASHSEED), which silently made the "deterministic" stream
        # differ between runs — the seed stamped into saved results must
        # reproduce the run bit-for-bit in a fresh interpreter.
        name_salt = zlib.crc32(profile.name.encode()) & 0xFFFF
        self.rng = random.Random((seed * 1_000_003 + core_id) ^ name_salt)

        footprint = min(profile.footprint_lines, capacity_lines // self.n_cores)
        self._footprint = max(footprint, 1024)
        if profile.kind is WorkloadKind.MULTI_THREADED:
            # Threads of one program share the working set.
            self._base_line = 0
        else:
            self._base_line = (core_id * self._footprint) % max(
                1, capacity_lines - self._footprint
            )

        self._read_streams: List[int] = [
            self.rng.randrange(self._footprint)
            for _ in range(profile.stream_count)
        ]
        self._write_streams: List[int] = [
            self.rng.randrange(self._footprint)
            for _ in range(max(1, profile.stream_count // 2))
        ]
        self._recent_reads: Deque[int] = deque(maxlen=32)
        self._last_offsets: Optional[Tuple[int, ...]] = None
        self._pending_writes = 0  # remaining write-backs in the current burst

    # ------------------------------------------------------------------
    # Address models
    # ------------------------------------------------------------------
    def _line_to_address(self, line: int) -> int:
        return (self._base_line + (line % self._footprint)) * LINE_BYTES

    def _next_read_line(self) -> int:
        if self.rng.random() < self.profile.sequential_fraction:
            index = self.rng.randrange(len(self._read_streams))
            self._read_streams[index] = (
                self._read_streams[index] + 1
            ) % self._footprint
            # Occasionally re-seat a stream so footprints get covered.
            if self.rng.random() < 0.002:
                self._read_streams[index] = self.rng.randrange(self._footprint)
            return self._read_streams[index]
        return self.rng.randrange(self._footprint)

    def _next_write_line(self) -> int:
        if self._recent_reads and (
            self.rng.random() < self.profile.write_read_affinity
        ):
            return self.rng.choice(tuple(self._recent_reads))
        if self.rng.random() < self.profile.sequential_fraction:
            index = self.rng.randrange(len(self._write_streams))
            self._write_streams[index] = (
                self._write_streams[index] + 1
            ) % self._footprint
            return self._write_streams[index]
        return self.rng.randrange(self._footprint)

    # ------------------------------------------------------------------
    # Dirty masks (Figure 2 + §IV-C2 offset correlation)
    # ------------------------------------------------------------------
    def _next_dirty_mask(self) -> int:
        weights = self.profile.dirty_word_distribution
        count = self.rng.choices(range(WORDS_PER_LINE + 1), weights)[0]
        if count == 0:
            return 0
        if (
            self._last_offsets is not None
            and self.rng.random() < self.profile.offset_correlation
        ):
            # Reuse the previous write-back's offsets, trimmed or grown to
            # the drawn count — this is the clustering rotation defeats.
            offsets = list(self._last_offsets)[:count]
            remaining = [w for w in range(WORDS_PER_LINE) if w not in offsets]
            while len(offsets) < count:
                offsets.append(remaining.pop(self.rng.randrange(len(remaining))))
        else:
            # Weighted sampling without replacement: low offsets dominate
            # (struct headers / counters), the clustering data rotation
            # de-correlates.
            offsets = []
            candidates = list(range(WORDS_PER_LINE))
            weights = list(self.profile.offset_weights)
            for _ in range(count):
                pick = self.rng.choices(
                    range(len(candidates)), weights=weights
                )[0]
                offsets.append(candidates.pop(pick))
                weights.pop(pick)
        self._last_offsets = tuple(sorted(offsets))
        mask = 0
        for word in offsets:
            mask |= 1 << word
        return mask

    # ------------------------------------------------------------------
    # Arrival process
    # ------------------------------------------------------------------
    def _gap_instructions(self, mean: float) -> int:
        if mean <= 0:
            return 0
        return int(self.rng.expovariate(1.0 / mean))

    def records(self) -> Iterator[TraceRecord]:
        """Yield an endless stream of memory-level trace records."""
        profile = self.profile
        if profile.mpki <= 0:
            raise ValueError(f"workload {profile.name} performs no memory accesses")
        f_w = profile.write_fraction
        burst_mean = max(1.0, profile.write_burst_mean)
        # Burst-start probability p solving p*B / (p*B + 1 - p) = f_w, so
        # the long-run write fraction is exactly WPKI/(RPKI+WPKI).
        denominator = burst_mean - f_w * (burst_mean - 1.0)
        burst_start_probability = min(1.0, f_w / denominator) if f_w > 0 else 0.0
        # Intra-burst write gaps are a quarter of read gaps (evictions are
        # back-to-back); scale the read gap so the aggregate access rate
        # still matches MPKI.
        mean_gap = (1000.0 / profile.mpki) / max(1e-9, 1.0 - 0.75 * f_w)
        while True:
            if self._pending_writes > 0:
                self._pending_writes -= 1
                line = self._next_write_line()
                yield TraceRecord(
                    gap_instructions=self._gap_instructions(mean_gap * 0.25),
                    kind=AccessKind.WRITE_BACK,
                    address=self._line_to_address(line),
                    dirty_mask=self._next_dirty_mask(),
                )
                continue
            if self.rng.random() < burst_start_probability:
                # Eviction wave: geometric burst length with the given mean.
                length = 1
                while (
                    self.rng.random() < 1.0 - 1.0 / burst_mean
                    and length < 4 * burst_mean
                ):
                    length += 1
                self._pending_writes = length
                continue
            line = self._next_read_line()
            self._recent_reads.append(line)
            yield TraceRecord(
                gap_instructions=self._gap_instructions(mean_gap),
                kind=AccessKind.READ,
                address=self._line_to_address(line),
            )

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.records()

    def take(self, count: int) -> List[TraceRecord]:
        """Materialise the first ``count`` records (tests, trace export)."""
        out: List[TraceRecord] = []
        for record in self.records():
            out.append(record)
            if len(out) >= count:
                break
        return out
