"""Synthetic main-memory trace generation.

The paper evaluates with gem5-captured SPEC/PARSEC streams; offline we
synthesise statistically equivalent post-LLC request streams from the
:class:`~repro.trace.workloads.WorkloadProfile` parameters:

* arrival density from RPKI/WPKI (geometric instruction gaps),
* bursty write-backs (LLC evictions arrive in waves),
* sequential streams for row-buffer/bank locality plus a random component,
* dirty-word masks drawn from the profile's Figure-2 distribution with
  §IV-C2's same-offset correlation between successive write-backs,
* read/write address affinity (dirty evictions of recently-read lines).

The generator is deterministic per (profile, seed, core); every draw goes
through one ``random.Random`` instance.
"""

from __future__ import annotations

import random
import zlib
from bisect import bisect
from collections import deque
from itertools import accumulate
from typing import Callable, Deque, Iterator, List, Optional, Tuple

from repro.memory.request import LINE_BYTES, WORDS_PER_LINE
from repro.trace.record import AccessKind, TraceRecord
from repro.trace.workloads import WorkloadKind, WorkloadProfile


class SyntheticTraceGenerator:
    """Endless per-core stream of :class:`TraceRecord`.

    ``core_id`` / ``n_cores`` partition the address space for
    multi-programmed workloads (independent programs own disjoint
    footprints); multi-threaded workloads share one footprint.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 1,
        core_id: int = 0,
        n_cores: int = 8,
        capacity_lines: int = (8 * 1024 ** 3) // LINE_BYTES,
    ):
        self.profile = profile
        self.core_id = core_id
        self.n_cores = max(1, n_cores)
        self.capacity_lines = capacity_lines
        # zlib.crc32, not hash(): str hashes are randomised per process
        # (PYTHONHASHSEED), which silently made the "deterministic" stream
        # differ between runs — the seed stamped into saved results must
        # reproduce the run bit-for-bit in a fresh interpreter.
        name_salt = zlib.crc32(profile.name.encode()) & 0xFFFF
        self.rng = random.Random((seed * 1_000_003 + core_id) ^ name_salt)

        footprint = min(profile.footprint_lines, capacity_lines // self.n_cores)
        self._footprint = max(footprint, 1024)
        if profile.kind is WorkloadKind.MULTI_THREADED:
            # Threads of one program share the working set.
            self._base_line = 0
        else:
            self._base_line = (core_id * self._footprint) % max(
                1, capacity_lines - self._footprint
            )

        self._read_streams: List[int] = [
            self.rng.randrange(self._footprint)
            for _ in range(profile.stream_count)
        ]
        self._write_streams: List[int] = [
            self.rng.randrange(self._footprint)
            for _ in range(max(1, profile.stream_count // 2))
        ]
        self._recent_reads: Deque[int] = deque(maxlen=32)
        self._last_offsets: Optional[Tuple[int, ...]] = None
        self._pending_writes = 0  # remaining write-backs in the current burst

        # Precomputed pieces of the per-write dirty-count draw.  This is
        # exactly what random.choices(population, weights) builds on every
        # call: the cumulative weight table, its float total, and the
        # bisect hi bound — so `bisect(cum, random() * total, 0, hi)`
        # consumes the identical single random() draw and returns the
        # identical count, without rebuilding the table per write-back.
        weights = profile.dirty_word_distribution
        self._dirty_cum = list(accumulate(weights))
        self._dirty_total = self._dirty_cum[-1] + 0.0
        self._dirty_hi = len(weights) - 1

    # ------------------------------------------------------------------
    # Address models
    # ------------------------------------------------------------------
    def _line_to_address(self, line: int) -> int:
        return (self._base_line + (line % self._footprint)) * LINE_BYTES

    def _next_read_line(self) -> int:
        if self.rng.random() < self.profile.sequential_fraction:
            index = self.rng.randrange(len(self._read_streams))
            self._read_streams[index] = (
                self._read_streams[index] + 1
            ) % self._footprint
            # Occasionally re-seat a stream so footprints get covered.
            if self.rng.random() < 0.002:
                self._read_streams[index] = self.rng.randrange(self._footprint)
            return self._read_streams[index]
        return self.rng.randrange(self._footprint)

    def _next_write_line(self) -> int:
        if self._recent_reads and (
            self.rng.random() < self.profile.write_read_affinity
        ):
            # Index the deque directly: insertion order is the only order
            # this draw may depend on.  ``rng.choice(tuple(deque))`` was
            # equivalent but one container copy slower — and the tuple()
            # detour invited "simplifying" _recent_reads into a set, whose
            # iteration order follows interpreter hash behaviour and would
            # silently break cross-PYTHONHASHSEED determinism.  randrange
            # consumes exactly the same _randbelow draw choice() did, so
            # the stream is bit-identical to the previous implementation.
            recent = self._recent_reads
            return recent[self.rng.randrange(len(recent))]
        if self.rng.random() < self.profile.sequential_fraction:
            index = self.rng.randrange(len(self._write_streams))
            self._write_streams[index] = (
                self._write_streams[index] + 1
            ) % self._footprint
            return self._write_streams[index]
        return self.rng.randrange(self._footprint)

    # ------------------------------------------------------------------
    # Dirty masks (Figure 2 + §IV-C2 offset correlation)
    # ------------------------------------------------------------------
    def _next_dirty_mask(self) -> int:
        count = bisect(
            self._dirty_cum,
            self.rng.random() * self._dirty_total,
            0,
            self._dirty_hi,
        )
        if count == 0:
            return 0
        if (
            self._last_offsets is not None
            and self.rng.random() < self.profile.offset_correlation
        ):
            # Reuse the previous write-back's offsets, trimmed or grown to
            # the drawn count — this is the clustering rotation defeats.
            offsets = list(self._last_offsets)[:count]
            remaining = [w for w in range(WORDS_PER_LINE) if w not in offsets]
            while len(offsets) < count:
                offsets.append(remaining.pop(self.rng.randrange(len(remaining))))
        else:
            # Weighted sampling without replacement: low offsets dominate
            # (struct headers / counters), the clustering data rotation
            # de-correlates.
            # Inlined rng.choices(range(n), weights=weights)[0]: the same
            # cumulative-table bisect over the same single random() draw,
            # without rebuilding choices' argument scaffolding per pick.
            offsets = []
            candidates = list(range(WORDS_PER_LINE))
            weights = list(self.profile.offset_weights)
            random_ = self.rng.random
            for _ in range(count):
                cum = list(accumulate(weights))
                pick = bisect(
                    cum, random_() * (cum[-1] + 0.0), 0, len(candidates) - 1
                )
                offsets.append(candidates.pop(pick))
                weights.pop(pick)
        self._last_offsets = tuple(sorted(offsets))
        mask = 0
        for word in offsets:
            mask |= 1 << word
        return mask

    # ------------------------------------------------------------------
    # Arrival process
    # ------------------------------------------------------------------
    def _gap_instructions(self, mean: float) -> int:
        if mean <= 0:
            return 0
        return int(self.rng.expovariate(1.0 / mean))

    #: Records generated per refill of the epoch buffer.  Epoch size only
    #: changes *when* draws happen (they are buffered ahead), never their
    #: sequence, so any epoch produces the same stream.
    EPOCH = 256

    def _check_profile(self) -> None:
        if self.profile.mpki <= 0:
            raise ValueError(
                f"workload {self.profile.name} performs no memory accesses"
            )

    def _fill(self, buffer: List[TraceRecord], count: int) -> None:
        """Append exactly ``count`` records to ``buffer``.

        This is the generation loop itself, run as one tight batch: the
        rng draw sequence is identical to generating records one at a
        time (same calls, same order — including the burst-start draws
        that produce no record), but the per-record generator suspension
        and attribute traffic are amortised over the whole epoch.
        """
        profile = self.profile
        random_ = self.rng.random
        f_w = profile.write_fraction
        burst_mean = max(1.0, profile.write_burst_mean)
        # Burst-start probability p solving p*B / (p*B + 1 - p) = f_w, so
        # the long-run write fraction is exactly WPKI/(RPKI+WPKI).
        denominator = burst_mean - f_w * (burst_mean - 1.0)
        burst_start_probability = min(1.0, f_w / denominator) if f_w > 0 else 0.0
        # Intra-burst write gaps are a quarter of read gaps (evictions are
        # back-to-back); scale the read gap so the aggregate access rate
        # still matches MPKI.
        mean_gap = (1000.0 / profile.mpki) / max(1e-9, 1.0 - 0.75 * f_w)
        write_gap = mean_gap * 0.25
        burst_continue = 1.0 - 1.0 / burst_mean
        burst_cap = 4 * burst_mean

        append = buffer.append
        note_read = self._recent_reads.append
        line_to_address = self._line_to_address
        next_read_line = self._next_read_line
        next_write_line = self._next_write_line
        next_dirty_mask = self._next_dirty_mask
        gap_instructions = self._gap_instructions
        target = len(buffer) + count
        pending_writes = self._pending_writes
        while len(buffer) < target:
            if pending_writes > 0:
                pending_writes -= 1
                line = next_write_line()
                append(
                    TraceRecord(
                        gap_instructions=gap_instructions(write_gap),
                        kind=AccessKind.WRITE_BACK,
                        address=line_to_address(line),
                        dirty_mask=next_dirty_mask(),
                    )
                )
                continue
            if random_() < burst_start_probability:
                # Eviction wave: geometric burst length with the given mean.
                length = 1
                while random_() < burst_continue and length < burst_cap:
                    length += 1
                pending_writes = length
                continue
            line = next_read_line()
            note_read(line)
            append(
                TraceRecord(
                    gap_instructions=gap_instructions(mean_gap),
                    kind=AccessKind.READ,
                    address=line_to_address(line),
                )
            )
        self._pending_writes = pending_writes

    def records(
        self,
        epoch: Optional[int] = None,
        on_epoch: Optional[Callable[[List[TraceRecord]], None]] = None,
    ) -> Iterator[TraceRecord]:
        """Yield an endless stream of memory-level trace records.

        Records are generated an epoch at a time (:meth:`_fill`) and then
        yielded one by one — the stream is bit-identical to unbuffered
        generation, only the rng draws happen up to one epoch early.
        ``on_epoch`` (if given) sees each freshly generated batch before
        it is yielded; the simulator uses this to prefetch the epoch's
        cold lines into functional storage in one vectorized pass.

        Abandoning the iterator mid-epoch leaves the generator's rng
        advanced past the records actually consumed; use a fresh
        generator (or :meth:`take`, which draws exactly what it returns)
        when the remaining stream must continue seamlessly.
        """
        self._check_profile()
        if epoch is None:
            epoch = self.EPOCH
        if epoch < 1:
            raise ValueError(f"epoch must be positive, got {epoch}")
        buffer: List[TraceRecord] = []
        while True:
            self._fill(buffer, epoch)
            if on_epoch is not None:
                on_epoch(buffer)
            yield from buffer
            buffer.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.records()

    def take(self, count: int) -> List[TraceRecord]:
        """Materialise the first ``count`` records (tests, trace export).

        Draws exactly ``count`` records' worth of rng state, so a
        subsequent ``take``/``records`` continues the stream where this
        call stopped — same contract as the original one-at-a-time pull.
        """
        self._check_profile()
        out: List[TraceRecord] = []
        if count > 0:
            self._fill(out, count)
        return out
