"""Workload profiles encoding the paper's published statistics.

Every number the paper prints about its workloads is encoded here:

* **RPKI / WPKI** per workload — Table II (multi-threaded PARSEC and the
  six SPEC multi-programmed mixes).
* **Dirty-word distributions** — Figure 2's anchors (omnetpp's 14 % and
  cactusADM's 52 % single-word write-backs; 77–99 % of write-backs under
  4 dirty words) and footnote 3's silent-store-free averages.  Where the
  paper prints no per-workload histogram, the vector is an interpolation
  within the published ranges; each such choice is data, visible below.
* **Offset correlation** — §IV-C2 observes that 32 % of successive
  write-backs are dirty at the same word offsets.
* **Rollback rates** — Table IV (canneal 5.8 %, facesim 4.1 %, MP6 3.4 %,
  ferret 2.2 %) and §IV-B3's 1.3 % default.

SPEC single-program RPKI/WPKI values (used by Figures 1 and 2, which the
paper does not tabulate) follow the standard SPEC CPU 2006 memory-intensity
characterisation: mcf/lbm/milc are memory-hogs, gromacs/h264ref are light.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.memory.request import WORDS_PER_LINE


class WorkloadKind(enum.Enum):
    """Benchmark-suite grouping used by the figures."""

    MULTI_THREADED = "MT"    #: PARSEC-2, 8 threads
    MULTI_PROGRAM = "MP"     #: SPEC CPU 2006 8-application mixes
    SPEC_SINGLE = "SPEC"     #: single SPEC programs (Figures 1 and 2)
    SERVER = "SRV"           #: server/database scenarios (front-end study)


def _dist(*weights: float) -> Tuple[float, ...]:
    """Normalise a 9-entry dirty-word-count weight vector."""
    if len(weights) != WORDS_PER_LINE + 1:
        raise ValueError(f"need 9 weights, got {len(weights)}")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return tuple(w / total for w in weights)


#: Footnote 3's average distribution (silent stores counted as 0-word).
FOOTNOTE3_AVERAGE: Tuple[float, ...] = _dist(
    17.2, 29.5, 14.1, 7.2, 12.9, 5.8, 1.8, 2.3, 9.2
)


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical model of one workload's main-memory request stream."""

    name: str
    kind: WorkloadKind
    rpki: float                       #: main-memory reads per kilo-instruction
    wpki: float                       #: write-backs per kilo-instruction
    #: P(write-back has exactly i dirty words), i = 0..8 (Figure 2).
    dirty_word_distribution: Tuple[float, ...]
    #: P(successive write-backs share their dirty offsets) (§IV-C2: 0.32).
    offset_correlation: float = 0.32
    #: Relative dirtiness of each word offset within a line.  Real
    #: programs dirty low offsets far more often (headers, counters,
    #: struct leaders), which is exactly the chip-clustering the paper's
    #: data rotation de-correlates (§IV-C2).  Normalised at use.
    offset_weights: Tuple[float, ...] = (
        0.30, 0.16, 0.12, 0.10, 0.09, 0.08, 0.08, 0.07
    )
    #: P(a RoW read rolls back in the always-faulty model) (Table IV).
    rollback_rate: float = 0.013
    #: P(the next access continues a sequential stream) — row-buffer and
    #: bank locality knob.
    sequential_fraction: float = 0.45
    #: Number of concurrently live sequential streams per core.
    stream_count: int = 4
    #: Distinct lines a core touches (working-set footprint).
    footprint_lines: int = 1 << 18
    #: Fraction of write-backs whose address was recently read (dirty
    #: evictions of lines brought in by reads) — drives same-row reuse.
    write_read_affinity: float = 0.3
    #: Burstiness of write-backs: mean number of write-backs arriving
    #: back-to-back when an eviction wave happens (LLC behaviour).
    write_burst_mean: float = 4.0
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.dirty_word_distribution) != WORDS_PER_LINE + 1:
            raise ValueError("dirty distribution needs 9 entries")
        if abs(sum(self.dirty_word_distribution) - 1.0) > 1e-9:
            raise ValueError("dirty distribution must sum to 1")
        if self.rpki < 0 or self.wpki < 0:
            raise ValueError("RPKI/WPKI must be non-negative")
        if not 0 <= self.offset_correlation <= 1:
            raise ValueError("offset_correlation out of [0, 1]")

    @property
    def mpki(self) -> float:
        """Total main-memory accesses per kilo-instruction."""
        return self.rpki + self.wpki

    @property
    def write_fraction(self) -> float:
        if self.mpki == 0:
            return 0.0
        return self.wpki / self.mpki

    @property
    def mean_dirty_words(self) -> float:
        return sum(i * p for i, p in enumerate(self.dirty_word_distribution))

    @property
    def one_word_fraction(self) -> float:
        """Fraction of write-backs that dirty exactly one word."""
        return self.dirty_word_distribution[1]


# ---------------------------------------------------------------------------
# Multi-threaded workloads (PARSEC-2, Table II)
# ---------------------------------------------------------------------------
# Dirty-word vectors are interpolations anchored to the published ranges;
# memory-intense programs with streaming writes (canneal, streamcluster)
# lean toward few-word write-backs, dedup/freqmine carry wider updates.

MULTI_THREADED: List[WorkloadProfile] = [
    WorkloadProfile(
        "canneal", WorkloadKind.MULTI_THREADED, rpki=15.19, wpki=7.13,
        dirty_word_distribution=_dist(14, 34, 20, 9, 10, 5, 2, 2, 4),
        rollback_rate=0.058, sequential_fraction=0.25,
        description="simulated annealing, pointer-chasing, high MPKI",
    ),
    WorkloadProfile(
        "dedup", WorkloadKind.MULTI_THREADED, rpki=3.04, wpki=2.072,
        dirty_word_distribution=_dist(10, 22, 18, 13, 15, 8, 5, 3, 6),
        sequential_fraction=0.55,
        description="pipelined compression, bulk buffer writes",
    ),
    WorkloadProfile(
        "facesim", WorkloadKind.MULTI_THREADED, rpki=6.66, wpki=1.26,
        dirty_word_distribution=_dist(12, 30, 19, 10, 12, 6, 3, 3, 5),
        rollback_rate=0.041, sequential_fraction=0.5,
        description="physics solver, read-dominant",
    ),
    WorkloadProfile(
        "fluidanimate", WorkloadKind.MULTI_THREADED, rpki=5.54, wpki=1.51,
        dirty_word_distribution=_dist(13, 28, 18, 10, 13, 7, 3, 3, 5),
        sequential_fraction=0.5,
        description="SPH fluid dynamics, grid sweeps",
    ),
    WorkloadProfile(
        "freqmine", WorkloadKind.MULTI_THREADED, rpki=0.78, wpki=3.33,
        dirty_word_distribution=_dist(9, 20, 17, 14, 17, 9, 5, 3, 6),
        sequential_fraction=0.4,
        description="FP-growth mining, write-heavy tree updates",
    ),
    WorkloadProfile(
        "streamcluster", WorkloadKind.MULTI_THREADED, rpki=5.19, wpki=2.13,
        dirty_word_distribution=_dist(12, 33, 21, 10, 10, 5, 3, 2, 4),
        sequential_fraction=0.65,
        description="online clustering, streaming reads",
    ),
    WorkloadProfile(
        # Table IV names ferret; Table II does not list its rates, so they
        # are interpolated from PARSEC characterisation studies.
        "ferret", WorkloadKind.MULTI_THREADED, rpki=4.20, wpki=1.85,
        dirty_word_distribution=_dist(11, 27, 18, 11, 13, 7, 4, 3, 6),
        rollback_rate=0.022, sequential_fraction=0.45,
        description="content-based image search pipeline",
    ),
]


# ---------------------------------------------------------------------------
# Multi-programmed workloads (SPEC CPU 2006 mixes, Table II)
# ---------------------------------------------------------------------------
# MP mixes blend heterogeneous programs, so their dirty vectors sit close
# to the footnote-3 average; MP1-MP3 lean harder on 1-2-word write-backs
# (the paper notes their RWoW-RDE IRLP approaches 8).

MULTI_PROGRAM: List[WorkloadProfile] = [
    WorkloadProfile(
        "MP1", WorkloadKind.MULTI_PROGRAM, rpki=6.45, wpki=3.11,
        dirty_word_distribution=_dist(10, 36, 22, 9, 9, 5, 3, 2, 4),
        sequential_fraction=0.4,
        description="2x mcf, 2x gemsFDTD, 2x astar, 2x sphinx3",
    ),
    WorkloadProfile(
        "MP2", WorkloadKind.MULTI_PROGRAM, rpki=2.68, wpki=1.56,
        dirty_word_distribution=_dist(10, 35, 21, 10, 9, 6, 3, 2, 4),
        sequential_fraction=0.45,
        description="2x mcf, 2x gromacs, 2x gemsFDTD, 2x h264ref",
    ),
    WorkloadProfile(
        "MP3", WorkloadKind.MULTI_PROGRAM, rpki=2.31, wpki=1.08,
        dirty_word_distribution=_dist(11, 34, 22, 10, 9, 6, 3, 2, 3),
        sequential_fraction=0.5,
        description="2x gromacs, 2x h264ref, 2x astar, 2x sphinx3",
    ),
    WorkloadProfile(
        "MP4", WorkloadKind.MULTI_PROGRAM, rpki=8.05, wpki=5.65,
        dirty_word_distribution=_dist(12, 26, 17, 10, 13, 8, 4, 3, 7),
        sequential_fraction=0.35,
        description="8x astar (homogeneous, memory-intense)",
    ),
    WorkloadProfile(
        "MP5", WorkloadKind.MULTI_PROGRAM, rpki=4.15, wpki=2.60,
        dirty_word_distribution=_dist(11, 25, 16, 11, 14, 8, 4, 3, 8),
        sequential_fraction=0.55,
        description="8x gemsFDTD (homogeneous, streaming)",
    ),
    WorkloadProfile(
        "MP6", WorkloadKind.MULTI_PROGRAM, rpki=5.09, wpki=2.09,
        dirty_word_distribution=_dist(9, 31, 20, 10, 11, 7, 4, 3, 5),
        rollback_rate=0.034, sequential_fraction=0.45,
        description="2x cactusADM, 2x soplex, 2x gemsFDTD, 2x astar",
    ),
]


# ---------------------------------------------------------------------------
# Single SPEC CPU 2006 programs (Figures 1 and 2)
# ---------------------------------------------------------------------------
# Figure 2's published anchors: omnetpp has the minimum 1-word fraction
# (14 %), cactusADM the maximum (52 %); every program keeps <=3-word
# write-backs within 77-99 %.  RPKI/WPKI follow standard SPEC memory
# characterisation (not printed in the paper).

SPEC_SINGLES: List[WorkloadProfile] = [
    WorkloadProfile(
        "mcf", WorkloadKind.SPEC_SINGLE, rpki=16.8, wpki=4.6,
        dirty_word_distribution=_dist(12, 38, 21, 9, 8, 5, 3, 1, 3),
        sequential_fraction=0.2,
        description="sparse network simplex, pointer-heavy",
    ),
    WorkloadProfile(
        "gemsFDTD", WorkloadKind.SPEC_SINGLE, rpki=9.2, wpki=4.4,
        dirty_word_distribution=_dist(10, 24, 16, 12, 15, 8, 4, 3, 8),
        sequential_fraction=0.65,
        description="finite-difference time domain, streaming grids",
    ),
    WorkloadProfile(
        "astar", WorkloadKind.SPEC_SINGLE, rpki=6.4, wpki=3.9,
        dirty_word_distribution=_dist(12, 33, 21, 10, 10, 6, 3, 2, 3),
        sequential_fraction=0.3,
        description="path-finding over graph maps",
    ),
    WorkloadProfile(
        "sphinx3", WorkloadKind.SPEC_SINGLE, rpki=5.1, wpki=1.1,
        dirty_word_distribution=_dist(13, 35, 20, 10, 9, 5, 3, 2, 3),
        sequential_fraction=0.45,
        description="speech recognition, read-dominant",
    ),
    WorkloadProfile(
        "gromacs", WorkloadKind.SPEC_SINGLE, rpki=1.1, wpki=0.5,
        dirty_word_distribution=_dist(11, 30, 20, 12, 11, 6, 4, 2, 4),
        sequential_fraction=0.5,
        description="molecular dynamics, cache-friendly",
    ),
    WorkloadProfile(
        "h264ref", WorkloadKind.SPEC_SINGLE, rpki=1.6, wpki=0.7,
        dirty_word_distribution=_dist(10, 28, 19, 12, 12, 7, 4, 3, 5),
        sequential_fraction=0.55,
        description="video encoding, block writes",
    ),
    WorkloadProfile(
        "cactusADM", WorkloadKind.SPEC_SINGLE, rpki=6.9, wpki=3.5,
        dirty_word_distribution=_dist(8, 52, 17, 7, 6, 4, 2, 1, 3),
        sequential_fraction=0.6,
        description="numerical relativity; 52% single-word write-backs (Fig 2 max)",
    ),
    WorkloadProfile(
        "soplex", WorkloadKind.SPEC_SINGLE, rpki=8.8, wpki=2.7,
        dirty_word_distribution=_dist(11, 30, 19, 11, 11, 6, 4, 3, 5),
        sequential_fraction=0.4,
        description="linear programming solver",
    ),
    WorkloadProfile(
        "omnetpp", WorkloadKind.SPEC_SINGLE, rpki=9.4, wpki=4.1,
        dirty_word_distribution=_dist(9, 14, 17, 18, 20, 9, 5, 3, 5),
        sequential_fraction=0.25,
        description="discrete-event simulation; 14% single-word write-backs (Fig 2 min)",
    ),
    WorkloadProfile(
        "milc", WorkloadKind.SPEC_SINGLE, rpki=11.6, wpki=5.2,
        dirty_word_distribution=_dist(10, 26, 17, 11, 14, 8, 4, 3, 7),
        sequential_fraction=0.6,
        description="lattice QCD, streaming",
    ),
    WorkloadProfile(
        "lbm", WorkloadKind.SPEC_SINGLE, rpki=19.5, wpki=10.4,
        dirty_word_distribution=_dist(8, 22, 18, 13, 16, 9, 4, 4, 6),
        sequential_fraction=0.75,
        description="lattice Boltzmann, write-streaming (STREAM-like)",
    ),
    WorkloadProfile(
        "leslie3d", WorkloadKind.SPEC_SINGLE, rpki=7.3, wpki=3.1,
        dirty_word_distribution=_dist(10, 27, 18, 12, 13, 8, 4, 3, 5),
        sequential_fraction=0.65,
        description="computational fluid dynamics",
    ),
]


# ---------------------------------------------------------------------------
# STREAM kernels (the paper's Table II mentions STREAM among the
# multi-threaded workloads).  Purely sequential triads with bulk stores:
# write-backs touch most of each line, arrivals are maximally streaming.
# ---------------------------------------------------------------------------

STREAM_KERNELS: List[WorkloadProfile] = [
    WorkloadProfile(
        "stream-copy", WorkloadKind.MULTI_THREADED, rpki=11.0, wpki=5.5,
        dirty_word_distribution=_dist(2, 4, 6, 9, 14, 15, 14, 13, 23),
        sequential_fraction=0.95, offset_correlation=0.8,
        write_burst_mean=8.0, stream_count=2,
        description="STREAM copy: c[i] = a[i] (bulk line writes)",
    ),
    WorkloadProfile(
        "stream-scale", WorkloadKind.MULTI_THREADED, rpki=11.0, wpki=5.5,
        dirty_word_distribution=_dist(2, 5, 7, 10, 14, 15, 14, 12, 21),
        sequential_fraction=0.95, offset_correlation=0.8,
        write_burst_mean=8.0, stream_count=2,
        description="STREAM scale: b[i] = s*c[i]",
    ),
    WorkloadProfile(
        "stream-triad", WorkloadKind.MULTI_THREADED, rpki=16.0, wpki=5.5,
        dirty_word_distribution=_dist(2, 4, 6, 9, 13, 15, 15, 13, 23),
        sequential_fraction=0.95, offset_correlation=0.8,
        write_burst_mean=8.0, stream_count=3,
        description="STREAM triad: a[i] = b[i] + s*c[i]",
    ),
]


# ---------------------------------------------------------------------------
# Server/database scenarios (front-end study).  Not from the paper's
# Table II: these model the workload class a deployed PCM main memory
# actually serves — huge footprints that defeat a 256 MB DRAM cache,
# skewed record reuse that a replacement policy can exploit, and small
# in-place record updates (1-2 dirty words dominate).  They exist to
# exercise the simulated cache tier: reuse-vs-scan balance is what
# separates LRU, CLOCK and MAC behind the filter.
# ---------------------------------------------------------------------------

SERVER_WORKLOADS: List[WorkloadProfile] = [
    WorkloadProfile(
        "oltp", WorkloadKind.SERVER, rpki=10.5, wpki=4.8,
        dirty_word_distribution=_dist(8, 44, 24, 9, 6, 4, 2, 1, 2),
        sequential_fraction=0.15, stream_count=8,
        footprint_lines=1 << 20, write_read_affinity=0.6,
        write_burst_mean=2.0,
        description="OLTP-style: random record touches, tiny in-place updates",
    ),
    WorkloadProfile(
        "webserve", WorkloadKind.SERVER, rpki=7.8, wpki=1.9,
        dirty_word_distribution=_dist(12, 36, 22, 10, 8, 5, 3, 2, 2),
        sequential_fraction=0.35, stream_count=6,
        footprint_lines=1 << 19, write_read_affinity=0.4,
        description="web serving: read-mostly with hot-object reuse",
    ),
    WorkloadProfile(
        "kvstore", WorkloadKind.SERVER, rpki=12.6, wpki=6.2,
        dirty_word_distribution=_dist(6, 40, 26, 11, 7, 4, 3, 1, 2),
        sequential_fraction=0.1, stream_count=8,
        footprint_lines=1 << 21, write_read_affinity=0.7,
        write_burst_mean=2.0,
        description="key-value store: uniform-ish gets/puts, huge footprint",
    ),
]


ALL_WORKLOADS: List[WorkloadProfile] = (
    MULTI_THREADED + MULTI_PROGRAM + SPEC_SINGLES + STREAM_KERNELS
    + SERVER_WORKLOADS
)

_REGISTRY: Dict[str, WorkloadProfile] = {w.name: w for w in ALL_WORKLOADS}

#: The six MT and six MP workloads Figures 8-11 plot individually.
FIGURE_MT_NAMES: List[str] = [
    "canneal", "dedup", "facesim", "fluidanimate", "freqmine", "streamcluster",
]
FIGURE_MP_NAMES: List[str] = ["MP1", "MP2", "MP3", "MP4", "MP5", "MP6"]

#: Table IV's rollback-heavy workloads.
TABLE4_NAMES: List[str] = ["canneal", "facesim", "MP6", "ferret"]


def get_workload(name: str) -> WorkloadProfile:
    """Look a workload profile up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def workload_names(kind: WorkloadKind = None) -> List[str]:
    """All workload names, optionally filtered by suite."""
    if kind is None:
        return [w.name for w in ALL_WORKLOADS]
    return [w.name for w in ALL_WORKLOADS if w.kind is kind]
