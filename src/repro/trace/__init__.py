"""Workload profiles, synthetic trace generation and trace file I/O."""

from repro.trace.record import AccessKind, TraceRecord
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.trace.trace_io import iter_trace, load_trace, save_trace
from repro.trace.workloads import (
    ALL_WORKLOADS,
    FIGURE_MP_NAMES,
    FIGURE_MT_NAMES,
    MULTI_PROGRAM,
    MULTI_THREADED,
    SPEC_SINGLES,
    TABLE4_NAMES,
    WorkloadKind,
    WorkloadProfile,
    get_workload,
    workload_names,
)

__all__ = [
    "AccessKind",
    "TraceRecord",
    "SyntheticTraceGenerator",
    "iter_trace",
    "load_trace",
    "save_trace",
    "ALL_WORKLOADS",
    "FIGURE_MP_NAMES",
    "FIGURE_MT_NAMES",
    "MULTI_PROGRAM",
    "MULTI_THREADED",
    "SPEC_SINGLES",
    "TABLE4_NAMES",
    "WorkloadKind",
    "WorkloadProfile",
    "get_workload",
    "workload_names",
]
