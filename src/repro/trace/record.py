"""Trace records: the unit of work a core feeds the memory hierarchy.

A trace is a stream of :class:`TraceRecord` items.  Each record says "run
``gap_instructions`` instructions, then perform this memory access".  For
main-memory-level traces (the paper's evaluation granularity) the access
is a line read or a write-back with a dirty-word mask; for full-hierarchy
traces it is a load/store at byte granularity that the cache stack filters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.memory.request import LINE_BYTES, WORDS_PER_LINE


class AccessKind(enum.Enum):
    """What the trace record asks the memory system to do."""

    READ = "read"          #: line fill (LLC miss)
    WRITE_BACK = "write"   #: dirty line eviction from the LLC
    LOAD = "load"          #: CPU load (full-hierarchy traces)
    STORE = "store"        #: CPU store (full-hierarchy traces)


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One memory event in a core's instruction stream."""

    gap_instructions: int       #: instructions executed before this access
    kind: AccessKind
    address: int                #: byte address (line aligned for READ/WRITE_BACK)
    dirty_mask: int = 0         #: write-backs: which 8B words changed
    new_words: Optional[Tuple[int, ...]] = None  #: functional payload

    def __post_init__(self) -> None:
        if self.gap_instructions < 0:
            raise ValueError("gap_instructions must be non-negative")
        if self.kind in (AccessKind.READ, AccessKind.WRITE_BACK):
            if self.address % LINE_BYTES:
                raise ValueError(
                    f"{self.kind.value} address {self.address:#x} not line aligned"
                )
        if not 0 <= self.dirty_mask < (1 << WORDS_PER_LINE):
            raise ValueError(f"dirty mask out of range: {self.dirty_mask:#x}")
        if self.kind is not AccessKind.WRITE_BACK and self.dirty_mask:
            raise ValueError("only write-backs carry dirty masks")

    @property
    def is_memory_level(self) -> bool:
        """True for post-LLC (main-memory) records."""
        return self.kind in (AccessKind.READ, AccessKind.WRITE_BACK)

    @property
    def line_address(self) -> int:
        return self.address // LINE_BYTES
