"""Plain-text trace file I/O.

Traces are exchangeable as line-oriented text — one record per line::

    <gap_instructions> <R|W|L|S> <hex address> [<hex dirty mask>]

``R`` = line read, ``W`` = write-back (with mask), ``L``/``S`` =
load/store for full-hierarchy traces.  Comment lines start with ``#``.
The format round-trips exactly; see ``tests/trace/test_trace_io.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.trace.record import AccessKind, TraceRecord

_KIND_TO_CODE = {
    AccessKind.READ: "R",
    AccessKind.WRITE_BACK: "W",
    AccessKind.LOAD: "L",
    AccessKind.STORE: "S",
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}


def format_record(record: TraceRecord) -> str:
    """Serialise one record to its text line."""
    parts = [
        str(record.gap_instructions),
        _KIND_TO_CODE[record.kind],
        f"{record.address:#x}",
    ]
    if record.kind is AccessKind.WRITE_BACK:
        parts.append(f"{record.dirty_mask:#x}")
    return " ".join(parts)


def parse_record(line: str) -> TraceRecord:
    """Parse one text line back into a record."""
    parts = line.split()
    if len(parts) < 3:
        raise ValueError(f"malformed trace line: {line!r}")
    gap = int(parts[0])
    try:
        kind = _CODE_TO_KIND[parts[1]]
    except KeyError:
        raise ValueError(f"unknown access code {parts[1]!r} in {line!r}") from None
    address = int(parts[2], 16)
    dirty_mask = 0
    if kind is AccessKind.WRITE_BACK:
        if len(parts) < 4:
            raise ValueError(f"write-back line missing dirty mask: {line!r}")
        dirty_mask = int(parts[3], 16)
    return TraceRecord(
        gap_instructions=gap, kind=kind, address=address, dirty_mask=dirty_mask
    )


def save_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records to ``path``; returns the record count."""
    count = 0
    with open(path, "w") as handle:
        handle.write("# repro trace v1: gap kind address [dirty_mask]\n")
        for record in records:
            handle.write(format_record(record) + "\n")
            count += 1
    return count


def iter_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records from a trace file."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_record(line)


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read the whole trace into memory."""
    return list(iter_trace(path))
