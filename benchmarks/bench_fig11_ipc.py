"""Figure 11 — IPC improvement over the baseline.

Paper shape (averages over all workloads): RoW-NR +4.5%, WoW-NR +6.1%,
RWoW-NR +9.95%, RWoW-RD +13.1%, RWoW-RDE +16.6%; overall +15.6%/+16.7%
for MP/MT with the full system.
"""

from repro.analysis import FigureSeries, figure_report, percent
from repro.core.systems import PCMAP_SYSTEM_NAMES

from benchmarks.common import (
    FIGURE_WORKLOADS,
    figure_sweep,
    mt_mp_average_rows,
    write_report,
)


def _build_report() -> str:
    comparisons = figure_sweep()
    series = []
    for name in PCMAP_SYSTEM_NAMES:
        values = {
            c.workload_name: c.ipc_improvement(name) for c in comparisons
        }
        series.append(FigureSeries(name, mt_mp_average_rows(values)))
    workloads = FIGURE_WORKLOADS + ["Average(MT)", "Average(MP)"]
    return figure_report(
        "Figure 11: IPC improvement over baseline "
        "(paper: row-nr +4.5%, wow-nr +6.1%, rwow-nr +10%, "
        "rwow-rd +13.1%, rwow-rde +16.6%)",
        workloads,
        series,
        value_format=percent,
    )


def test_fig11_ipc(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("fig11_ipc", report, runs=figure_sweep())

    comparisons = figure_sweep()

    def mean(name):
        vals = [c.ipc_improvement(name) for c in comparisons]
        return sum(vals) / len(vals)

    # The paper's headline ordering: the full PCMap system wins, single
    # mechanisms gain least, and every mechanism contributes.
    assert mean("rwow-rde") > 0.05
    assert mean("rwow-rde") > mean("row-nr")
    assert mean("rwow-rde") > mean("wow-nr")
    assert mean("rwow-rde") >= mean("rwow-nr") - 0.01
    assert mean("rwow-nr") > 0.0
