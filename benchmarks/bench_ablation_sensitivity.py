"""Ablations — sensitivity to the modelling/design choices DESIGN.md §5
calls out: the drain watermark (the paper's alpha), the ECC-update cost
fraction, and the SET/RESET write-latency asymmetry model.

Each test batches its whole (config, workload) set through the shared
sweep runner, so the points run in parallel and repeat invocations come
from the on-disk result cache.
"""

import dataclasses

from repro.analysis import format_table, percent
from repro.core.systems import make_system
from repro.memory.timing import DEFAULT_TIMING, WriteLatencyMode

from benchmarks.common import run_pairs, write_report

WORKLOAD = "canneal"


# ----------------------------------------------------------------------
# Drain watermark (alpha)
# ----------------------------------------------------------------------
def test_ablation_drain_watermark(benchmark):
    profiles = []
    alphas = (0.6, 0.8, 0.9)

    def run():
        pairs = []
        for alpha in alphas:
            pairs.append(
                (WORKLOAD, make_system("baseline", drain_high_watermark=alpha))
            )
            pairs.append(
                (WORKLOAD, make_system("rwow-rde", drain_high_watermark=alpha))
            )
        results = run_pairs(pairs)
        profiles.extend(results)
        rows = []
        for i, alpha in enumerate(alphas):
            base, result = results[2 * i], results[2 * i + 1]
            gain = result.ipc / base.ipc - 1.0
            rows.append(
                [f"{alpha:.1f}", percent(gain), f"{result.irlp_average:.2f}",
                 result.memory.drain_entries]
            )
        return format_table(
            ["alpha", "PCMap IPC gain", "IRLP", "drains"],
            rows,
            title="Ablation: write-drain high watermark (paper uses 0.8)",
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_drain_watermark", report, runs=profiles)


# ----------------------------------------------------------------------
# ECC update cost fraction
# ----------------------------------------------------------------------
def test_ablation_ecc_cost(benchmark):
    profiles = []
    fractions = (0.5, 0.85, 1.0)
    names = ("rwow-nr", "rwow-rde")

    def run():
        pairs = []
        for fraction in fractions:
            timing = dataclasses.replace(
                DEFAULT_TIMING, ecc_update_fraction=fraction
            )
            pairs.append((WORKLOAD, make_system("baseline", timing=timing)))
            for name in names:
                pairs.append((WORKLOAD, make_system(name, timing=timing)))
        results = run_pairs(pairs)
        profiles.extend(results)
        rows = []
        stride = 1 + len(names)
        for i, fraction in enumerate(fractions):
            base = results[stride * i]
            for j, name in enumerate(names):
                gain = results[stride * i + 1 + j].ipc / base.ipc - 1.0
                rows.append([f"{fraction:.2f}", name, percent(gain)])
        return format_table(
            ["ECC cost fraction", "system", "IPC gain"],
            rows,
            title=(
                "Ablation: ECC/PCC word-update cost as a fraction of a "
                "data-word write (default 0.85).  The no-rotation system "
                "is the one throttled by expensive code updates."
            ),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_ecc_cost", report, runs=profiles)


# ----------------------------------------------------------------------
# SET/RESET write asymmetry
# ----------------------------------------------------------------------
def test_ablation_set_reset(benchmark):
    profiles = []
    modes = (WriteLatencyMode.FIXED, WriteLatencyMode.SET_RESET)

    def run():
        pairs = []
        for mode in modes:
            timing = dataclasses.replace(DEFAULT_TIMING, write_mode=mode)
            pairs.append((WORKLOAD, make_system("baseline", timing=timing)))
            pairs.append((WORKLOAD, make_system("rwow-rde", timing=timing)))
        results = run_pairs(pairs)
        profiles.extend(results)
        rows = []
        for i, mode in enumerate(modes):
            base, result = results[2 * i], results[2 * i + 1]
            gain = result.ipc / base.ipc - 1.0
            rows.append(
                [mode.value, percent(gain), f"{result.irlp_average:.2f}"]
            )
        return format_table(
            ["write-latency model", "PCMap IPC gain", "IRLP"],
            rows,
            title=(
                "Ablation: fixed 120 ns word writes (the paper's main "
                "configuration) vs per-word SET(120ns)/RESET(50ns) draws"
            ),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_set_reset", report, runs=profiles)
