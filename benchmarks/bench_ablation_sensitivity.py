"""Ablations — sensitivity to the modelling/design choices DESIGN.md §5
calls out: the drain watermark (the paper's alpha), the ECC-update cost
fraction, and the SET/RESET write-latency asymmetry model.
"""

import dataclasses

from repro.analysis import format_table, percent
from repro.core.systems import make_system
from repro.memory.timing import DEFAULT_TIMING, WriteLatencyMode
from repro.sim.experiment import run_workload

from benchmarks.common import SWEEP_PARAMS, write_report

WORKLOAD = "canneal"


def _gain(system, baseline_system, profiles=None):
    base = run_workload(WORKLOAD, baseline_system, SWEEP_PARAMS)
    result = run_workload(WORKLOAD, system, SWEEP_PARAMS)
    if profiles is not None:
        profiles.extend([base, result])
    return result.ipc / base.ipc - 1.0, result


# ----------------------------------------------------------------------
# Drain watermark (alpha)
# ----------------------------------------------------------------------
def test_ablation_drain_watermark(benchmark):
    profiles = []

    def run():
        rows = []
        for alpha in (0.6, 0.8, 0.9):
            base = make_system("baseline", drain_high_watermark=alpha)
            pcmap = make_system("rwow-rde", drain_high_watermark=alpha)
            gain, result = _gain(pcmap, base, profiles)
            rows.append(
                [f"{alpha:.1f}", percent(gain), f"{result.irlp_average:.2f}",
                 result.memory.drain_entries]
            )
        return format_table(
            ["alpha", "PCMap IPC gain", "IRLP", "drains"],
            rows,
            title="Ablation: write-drain high watermark (paper uses 0.8)",
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_drain_watermark", report, runs=profiles)


# ----------------------------------------------------------------------
# ECC update cost fraction
# ----------------------------------------------------------------------
def test_ablation_ecc_cost(benchmark):
    profiles = []

    def run():
        rows = []
        for fraction in (0.5, 0.85, 1.0):
            timing = dataclasses.replace(
                DEFAULT_TIMING, ecc_update_fraction=fraction
            )
            base = make_system("baseline", timing=timing)
            for name in ("rwow-nr", "rwow-rde"):
                gain, _result = _gain(
                    make_system(name, timing=timing), base, profiles
                )
                rows.append([f"{fraction:.2f}", name, percent(gain)])
        return format_table(
            ["ECC cost fraction", "system", "IPC gain"],
            rows,
            title=(
                "Ablation: ECC/PCC word-update cost as a fraction of a "
                "data-word write (default 0.85).  The no-rotation system "
                "is the one throttled by expensive code updates."
            ),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_ecc_cost", report, runs=profiles)


# ----------------------------------------------------------------------
# SET/RESET write asymmetry
# ----------------------------------------------------------------------
def test_ablation_set_reset(benchmark):
    profiles = []

    def run():
        rows = []
        for mode in (WriteLatencyMode.FIXED, WriteLatencyMode.SET_RESET):
            timing = dataclasses.replace(DEFAULT_TIMING, write_mode=mode)
            base = make_system("baseline", timing=timing)
            gain, result = _gain(
                make_system("rwow-rde", timing=timing), base, profiles
            )
            rows.append(
                [mode.value, percent(gain), f"{result.irlp_average:.2f}"]
            )
        return format_table(
            ["write-latency model", "PCMap IPC gain", "IRLP"],
            rows,
            title=(
                "Ablation: fixed 120 ns word writes (the paper's main "
                "configuration) vs per-word SET(120ns)/RESET(50ns) draws"
            ),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_set_reset", report, runs=profiles)
