"""Figure 9 — write throughput normalised to the baseline.

Paper shape: every PCMap variant with WoW improves write throughput; 5 of
12 workloads exceed 1.2x; RWoW-RDE (rotation of data + ECC/PCC) is the
best; RoW alone trades a little write throughput for read service.
"""

from repro.analysis import FigureSeries, figure_report, ratio
from repro.core.systems import PCMAP_SYSTEM_NAMES

from benchmarks.common import (
    FIGURE_WORKLOADS,
    figure_sweep,
    mt_mp_average_rows,
    write_report,
)


def _build_report() -> str:
    comparisons = figure_sweep()
    series = []
    for name in PCMAP_SYSTEM_NAMES:
        values = {
            c.workload_name: c.write_throughput_ratio(name)
            for c in comparisons
        }
        series.append(FigureSeries(name, mt_mp_average_rows(values)))
    workloads = FIGURE_WORKLOADS + ["Average(MT)", "Average(MP)"]
    return figure_report(
        "Figure 9: write throughput vs baseline "
        "(paper: WoW systems >1.1x for most, RWoW avg ~1.33x)",
        workloads,
        series,
        value_format=ratio,
    )


def test_fig09_write_throughput(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("fig09_write_throughput", report, runs=figure_sweep())

    comparisons = figure_sweep()

    def mean(name):
        vals = [c.write_throughput_ratio(name) for c in comparisons]
        return sum(vals) / len(vals)

    # WoW-capable systems improve write throughput on average; full
    # rotation is the best of them.
    assert mean("wow-nr") > 0.95
    assert mean("rwow-rde") > 1.05
    assert mean("rwow-rde") > mean("rwow-nr")
