"""Extension — PCMap vs the write-pausing prior art (paper §VII).

The paper positions PCMap against preemption-based schemes (write
cancellation/pausing, its reference [11]): instead of interrupting a
write to let reads through, PCMap serves them *concurrently*.  This
benchmark runs the implemented write-pausing comparator next to the
baseline and full PCMap: PCMap must dominate, and pausing must at best
approach the baseline (its preemption overheads buy little once the
controller already prioritises reads and batches writes).
"""

from repro.analysis import FigureSeries, figure_report, percent

from benchmarks.common import run_grid, write_report

WORKLOADS = ["canneal", "streamcluster", "MP1", "MP4"]
SYSTEMS = ["baseline", "write-pausing", "rwow-rde"]

_SWEEP = []


def _run():
    if not _SWEEP:
        _SWEEP.extend(run_grid(WORKLOADS, SYSTEMS))
    return _SWEEP


def _build_report() -> str:
    comparisons = _run()
    series = [
        FigureSeries(
            name,
            {c.workload_name: c.ipc_improvement(name) for c in comparisons},
        )
        for name in SYSTEMS[1:]
    ]
    return figure_report(
        "Extension: IPC gain of write pausing (prior art [11]) vs full "
        "PCMap — overlap beats preemption (paper §VII)",
        WORKLOADS,
        series,
        value_format=percent,
    )


def test_ext_write_pausing(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("ext_write_pausing", report, runs=_run())

    comparisons = _run()
    for comparison in comparisons:
        pcmap = comparison.ipc_improvement("rwow-rde")
        pausing = comparison.ipc_improvement("write-pausing")
        assert pcmap > pausing, comparison.workload_name
        assert pcmap > 0
