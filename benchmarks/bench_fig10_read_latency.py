"""Figure 10 — effective read latency normalised to the baseline.

Paper shape: RoW-NR alone cuts effective read latency by 6-14%; adding
WoW and then rotation keeps reducing it; RWoW-RDE is the lowest.
"""

from repro.analysis import FigureSeries, figure_report, ratio
from repro.core.systems import PCMAP_SYSTEM_NAMES

from benchmarks.common import (
    FIGURE_WORKLOADS,
    figure_sweep,
    mt_mp_average_rows,
    write_report,
)


def _build_report() -> str:
    comparisons = figure_sweep()
    series = []
    for name in PCMAP_SYSTEM_NAMES:
        values = {
            c.workload_name: c.read_latency_ratio(name) for c in comparisons
        }
        series.append(FigureSeries(name, mt_mp_average_rows(values)))
    workloads = FIGURE_WORKLOADS + ["Average(MT)", "Average(MP)"]
    return figure_report(
        "Figure 10: effective read latency vs baseline "
        "(paper: decreasing from RoW-NR to RWoW-RDE)",
        workloads,
        series,
        value_format=ratio,
    )


def test_fig10_read_latency(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("fig10_read_latency", report, runs=figure_sweep())

    comparisons = figure_sweep()

    def mean(name):
        vals = [c.read_latency_ratio(name) for c in comparisons]
        return sum(vals) / len(vals)

    # PCMap reduces effective read latency; the fully-rotated system is
    # at least as good as the no-rotation variants.
    assert mean("rwow-rde") < 1.0
    assert mean("rwow-rde") <= mean("rwow-nr") + 0.05
