"""Shared machinery for the figure/table benchmarks.

The four main figures (8-11) plot the same 12-workload x 6-system sweep
from different angles, so the sweep is memoised process-wide and each
benchmark module formats its own view of it.  Every benchmark writes its
report to ``benchmarks/results/<name>.txt`` (and prints it, visible with
``pytest -s``); EXPERIMENTS.md captures one reference output per
experiment.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional

from repro.sim.experiment import SystemComparison, sweep_workloads
from repro.sim.simulator import SimulationParams
from repro.telemetry import RunProfile
from repro.trace.workloads import FIGURE_MP_NAMES, FIGURE_MT_NAMES

#: Workloads plotted in Figures 8-11 (six PARSEC + six SPEC mixes).
FIGURE_WORKLOADS: List[str] = FIGURE_MT_NAMES + FIGURE_MP_NAMES

#: Run scale for the benchmarks: large enough for steady-state drains,
#: small enough that the whole harness finishes in minutes.
SWEEP_PARAMS = SimulationParams(target_requests=4_000)

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_SWEEP_CACHE: Dict[str, List[SystemComparison]] = {}


def figure_sweep() -> List[SystemComparison]:
    """The memoised 12-workload x 6-system sweep behind Figures 8-11."""
    if "figures" not in _SWEEP_CACHE:
        _SWEEP_CACHE["figures"] = sweep_workloads(
            FIGURE_WORKLOADS, params=SWEEP_PARAMS
        )
    return _SWEEP_CACHE["figures"]


def telemetry_summary(runs: Iterable[object]) -> str:
    """Merged engine-profile line for a batch of simulation runs.

    Accepts any mix of :class:`~repro.sim.metrics.SimulationResult`,
    :class:`~repro.sim.experiment.SystemComparison` and bare
    :class:`~repro.telemetry.RunProfile` items; merges the per-run
    profiles (events dispatched, wall seconds) into one line so every
    benchmark report ends with its simulation cost — the number that
    makes hot-path regressions visible across report revisions.
    """
    merged = RunProfile()
    count = 0
    for item in runs:
        if isinstance(item, SystemComparison):
            profiles = [r.profile for r in item.results.values()]
        elif isinstance(item, RunProfile):
            profiles = [item]
        else:
            profiles = [getattr(item, "profile", None)]
        for profile in profiles:
            if profile is not None:
                merged.merge(profile)
                count += 1
    if count == 0:
        return "telemetry: no engine profiles recorded"
    return f"telemetry: {count} runs; {merged.summary()}"


def write_report(
    name: str, text: str, runs: Optional[Iterable[object]] = None
) -> str:
    """Persist a benchmark's report; returns the path.

    When ``runs`` is given, the merged :func:`telemetry_summary` line is
    appended to the report so the simulation cost is archived with it.
    """
    if runs is not None:
        text = f"{text}\n\n{telemetry_summary(runs)}"
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


def mt_mp_average_rows(values_by_workload: Dict[str, float]) -> Dict[str, float]:
    """Append Average(MT) / Average(MP) entries like the paper's figures."""
    mt = [values_by_workload[w] for w in FIGURE_MT_NAMES if w in values_by_workload]
    mp = [values_by_workload[w] for w in FIGURE_MP_NAMES if w in values_by_workload]
    extended = dict(values_by_workload)
    if mt:
        extended["Average(MT)"] = sum(mt) / len(mt)
    if mp:
        extended["Average(MP)"] = sum(mp) / len(mp)
    return extended
