"""Shared machinery for the figure/table benchmarks.

The four main figures (8-11) plot the same 12-workload x 6-system sweep
from different angles, so the sweep is memoised process-wide — keyed by
the content hash of its parameters, so editing ``SWEEP_PARAMS`` (or
monkeypatching it in a test) can never return a stale sweep.  All
simulation runs go through :mod:`repro.sim.runner`: they fan out over a
process pool (``REPRO_SWEEP_JOBS``, default: all cores) and are served
from the on-disk result cache under ``benchmarks/results/cache/``
(disable with ``REPRO_SWEEP_NO_CACHE=1``; relocate with
``REPRO_SWEEP_CACHE_DIR``).  Every benchmark writes its report to
``benchmarks/results/<name>.txt`` (and prints it, visible with
``pytest -s``); EXPERIMENTS.md captures one reference output per
experiment.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import SystemConfig
from repro.sim.experiment import SystemComparison, sweep_workloads
from repro.sim.metrics import SimulationResult
from repro.sim.results_io import atomic_write_text
from repro.sim.runner import ResultCache, content_hash
from repro.sim.runner import run_pairs as _runner_run_pairs
from repro.sim.simulator import SimulationParams
from repro.telemetry import RunProfile
from repro.trace.workloads import (
    FIGURE_MP_NAMES,
    FIGURE_MT_NAMES,
    WorkloadProfile,
)

#: Workloads plotted in Figures 8-11 (six PARSEC + six SPEC mixes).
FIGURE_WORKLOADS: List[str] = FIGURE_MT_NAMES + FIGURE_MP_NAMES

#: Run scale for the benchmarks: large enough for steady-state drains,
#: small enough that the whole harness finishes in minutes.
SWEEP_PARAMS = SimulationParams(target_requests=4_000)

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_SWEEP_CACHE: Dict[str, List[SystemComparison]] = {}


def sweep_jobs_count() -> int:
    """Worker processes for benchmark sweeps (``REPRO_SWEEP_JOBS`` wins)."""
    env = os.environ.get("REPRO_SWEEP_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def sweep_cache() -> Optional[ResultCache]:
    """The shared on-disk result cache (``None`` when disabled)."""
    if os.environ.get("REPRO_SWEEP_NO_CACHE"):
        return None
    directory = os.environ.get(
        "REPRO_SWEEP_CACHE_DIR", os.path.join(_RESULTS_DIR, "cache")
    )
    return ResultCache(directory)


def campaign_store_path() -> Optional[str]:
    """Durable-campaign opt-in: ``REPRO_CAMPAIGN_DIR`` names a directory
    holding the SQLite job store; unset (the default) keeps benchmark
    sweeps on the in-memory one-shot runner."""
    directory = os.environ.get("REPRO_CAMPAIGN_DIR", "").strip()
    if not directory:
        return None
    return os.path.join(directory, "campaign.sqlite")


def run_pairs(
    pairs: Sequence[Tuple[Union[str, WorkloadProfile], Union[str, SystemConfig]]],
    params: Optional[SimulationParams] = None,
) -> List[SimulationResult]:
    """Run (workload, system) pairs through the shared runner + cache.

    The entry point for benchmarks whose sweeps are not plain grids
    (timing sweeps, rollback ablations): results come back in pair order.
    With ``REPRO_CAMPAIGN_DIR`` set, the same pairs run as a durable
    campaign instead: progress persists in the SQLite store, a crashed
    benchmark run resumes where it stopped, and the results are
    byte-identical (each job's seed derives from its content).
    """
    params = params if params is not None else SWEEP_PARAMS
    store_path = campaign_store_path()
    if store_path is not None:
        from repro.sim.campaign import CampaignStore, run_pairs_durable

        cache = sweep_cache()
        if cache is None:
            raise RuntimeError(
                "REPRO_CAMPAIGN_DIR needs the result cache; unset "
                "REPRO_SWEEP_NO_CACHE to run benchmarks durably"
            )
        return run_pairs_durable(
            pairs, params, store=CampaignStore(store_path), cache=cache
        )
    return _runner_run_pairs(
        pairs,
        params,
        jobs=sweep_jobs_count(),
        cache=sweep_cache(),
    )


def run_grid(
    workloads: Iterable[Union[str, WorkloadProfile]],
    systems: Optional[Sequence[str]] = None,
    params: Optional[SimulationParams] = None,
) -> List[SystemComparison]:
    """Workloads x systems sweep through the shared runner + cache."""
    return sweep_workloads(
        workloads,
        systems,
        params if params is not None else SWEEP_PARAMS,
        jobs=sweep_jobs_count(),
        cache=sweep_cache(),
    )


def _sweep_memo_key(
    workloads: Sequence[str], params: SimulationParams
) -> str:
    """In-process memo key: the sweep's full parameter content hash."""
    return content_hash({"workloads": list(workloads), "params": params})


def figure_sweep() -> List[SystemComparison]:
    """The memoised 12-workload x 6-system sweep behind Figures 8-11.

    Memoised per (workloads, params) content hash — changing
    ``SWEEP_PARAMS`` (e.g. ``target_requests``) yields a fresh sweep, not
    the stale one recorded under a fixed key.
    """
    key = _sweep_memo_key(FIGURE_WORKLOADS, SWEEP_PARAMS)
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = run_grid(FIGURE_WORKLOADS, params=SWEEP_PARAMS)
    return _SWEEP_CACHE[key]


def telemetry_summary(runs: Iterable[object]) -> str:
    """Merged engine-profile line for a batch of simulation runs.

    Accepts any mix of :class:`~repro.sim.metrics.SimulationResult`,
    :class:`~repro.sim.experiment.SystemComparison` and bare
    :class:`~repro.telemetry.RunProfile` items; merges the per-run
    profiles (events dispatched, wall seconds) into one line so every
    benchmark report ends with its simulation cost — the number that
    makes hot-path regressions visible across report revisions.  Results
    served from the sweep cache contribute the recorded cost of the run
    that originally produced them.
    """
    merged = RunProfile()
    count = 0
    for item in runs:
        if isinstance(item, SystemComparison):
            profiles = [r.profile for r in item.results.values()]
        elif isinstance(item, RunProfile):
            profiles = [item]
        else:
            profiles = [getattr(item, "profile", None)]
        for profile in profiles:
            if profile is not None:
                merged.merge(profile)
                count += 1
    if count == 0:
        return "telemetry: no engine profiles recorded"
    return f"telemetry: {count} runs; {merged.summary()}"


def write_report(
    name: str, text: str, runs: Optional[Iterable[object]] = None
) -> str:
    """Persist a benchmark's report (atomically); returns the path.

    When ``runs`` is given, the merged :func:`telemetry_summary` line is
    appended to the report so the simulation cost is archived with it.
    """
    if runs is not None:
        text = f"{text}\n\n{telemetry_summary(runs)}"
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    atomic_write_text(path, text + "\n")
    print()
    print(text)
    return path


def mt_mp_average_rows(values_by_workload: Dict[str, float]) -> Dict[str, float]:
    """Append Average(MT) / Average(MP) entries like the paper's figures."""
    mt = [values_by_workload[w] for w in FIGURE_MT_NAMES if w in values_by_workload]
    mp = [values_by_workload[w] for w in FIGURE_MP_NAMES if w in values_by_workload]
    extended = dict(values_by_workload)
    if mt:
        extended["Average(MT)"] = sum(mt) / len(mt)
    if mp:
        extended["Average(MP)"] = sum(mp) / len(mp)
    return extended
