"""Hamming(72,64) codec microbenchmark.

Times the table-driven ``encode``/``decode`` against the bit-loop
reference implementations on the same random words; the ratio is the
machine-independent codec speedup tracked in BENCH_perf.json.
"""

from repro.perf import bench_codec

from benchmarks.common import write_report
from benchmarks.perf.common import PERF_SEED, report_text


def test_perf_codec(benchmark):
    report = benchmark.pedantic(
        lambda: bench_codec(PERF_SEED), rounds=1, iterations=1
    )
    write_report(
        "perf_codec", report_text(report, "perf: Hamming(72,64) codec")
    )
    assert report.metrics["encode_vs_reference"] >= 1.2
    assert report.metrics["decode_vs_reference"] >= 2.0
