"""End-to-end hot-path benchmark: one full rwow-rde functional run.

The events-per-second figure is the tracked end-to-end number; the
``sim_ticks``/``events_dispatched`` fingerprints double as a behavioural
check — they are deterministic for the fixed (seed, budget) and must not
move under purely mechanical optimisation.
"""

from repro.perf import bench_end_to_end

from benchmarks.common import write_report
from benchmarks.perf.common import PERF_SEED, report_text


def test_perf_end_to_end(benchmark):
    report = benchmark.pedantic(
        lambda: bench_end_to_end(PERF_SEED), rounds=1, iterations=1
    )
    write_report(
        "perf_end_to_end",
        report_text(report, "perf: end-to-end rwow-rde/canneal"),
    )
    assert report.metrics["events_dispatched"] > 0
    assert report.metrics["events_per_second"] > 0
