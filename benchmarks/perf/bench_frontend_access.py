"""Array-backed front-end tier microbenchmark.

Times warm hit-heavy epochs through the columnar array backend
(``access_batch`` at the simulator's on_epoch window) against the
per-access loop on the historical object backend, at the paper-scale
256 MB Table I geometry; the ratio is the machine-independent
array-tier speedup gated (>=5x) in BENCH_perf.json on numpy builds.
On a scalar-only build the report carries the object timing alone.
"""

from repro.ecc import batch
from repro.perf import bench_frontend_access

from benchmarks.common import write_report
from benchmarks.perf.common import PERF_SEED, report_text


def test_perf_frontend_access(benchmark):
    report = benchmark.pedantic(
        lambda: bench_frontend_access(PERF_SEED), rounds=1, iterations=1
    )
    write_report(
        "perf_frontend_access",
        report_text(report, "perf: array-backed front-end tier"),
    )
    if batch.HAS_NUMPY:
        assert report.metrics["batch_vs_object"] >= 5.0
