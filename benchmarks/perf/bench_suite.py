"""Full perf suite: refreshes the committed BENCH_perf.json.

Runs every microbenchmark at full budget, writes the seed- and
git-stamped payload — including the regression sentinel's pinned
``metrics_fingerprint`` section — to ``benchmarks/results/BENCH_perf.json``
(the file tracked in version control), and applies the gross-regression
gate.
"""

import json
import os

from repro.perf import check_payload, format_payload, run_suite
from repro.sim.results_io import atomic_write_text

from benchmarks.common import write_report
from benchmarks.perf.common import PERF_SEED

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def test_perf_suite(benchmark):
    payload = benchmark.pedantic(
        lambda: run_suite(seed=PERF_SEED), rounds=1, iterations=1
    )
    path = os.path.normpath(os.path.join(_RESULTS_DIR, "BENCH_perf.json"))
    atomic_write_text(path, json.dumps(payload, indent=1) + "\n")
    write_report("perf_suite", format_payload(payload))
    assert check_payload(payload) == []
