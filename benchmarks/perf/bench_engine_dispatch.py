"""Event-engine dispatch microbenchmark.

Times scheduling plus dispatching one event through the heap loop, on
both the allocation-free ``call_at`` path (used by never-cancelled
completions) and the cancellable ``schedule_at`` handle path.
"""

from repro.perf import bench_engine_dispatch

from benchmarks.common import write_report
from benchmarks.perf.common import PERF_SEED, report_text


def test_perf_engine_dispatch(benchmark):
    report = benchmark.pedantic(
        lambda: bench_engine_dispatch(PERF_SEED), rounds=1, iterations=1
    )
    write_report(
        "perf_engine_dispatch", report_text(report, "perf: engine dispatch")
    )
    for metric, value in report.metrics.items():
        assert value > 0, metric
