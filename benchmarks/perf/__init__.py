"""Hot-path microbenchmarks (codec, storage, engine dispatch, end-to-end).

Thin pytest wrappers over :mod:`repro.perf`: each module runs one suite
member at full budget, writes its report to ``benchmarks/results/``, and
asserts the machine-independent regression floors.  ``bench_suite``
additionally refreshes the committed ``BENCH_perf.json``.  The same
measurements back the ``repro perf`` CLI command (see docs/PERFORMANCE.md).
"""
