"""Vectorized batch codec microbenchmark.

Times ``repro.ecc.batch``'s array encode/decode against the scalar
per-word loop on the same random words; the ratio is the
machine-independent vectorization speedup gated (>=5x) in
BENCH_perf.json on numpy builds.  On a scalar-only build the report
carries the scalar timings alone.
"""

from repro.ecc import batch
from repro.perf import bench_batch_codec

from benchmarks.common import write_report
from benchmarks.perf.common import PERF_SEED, report_text


def test_perf_batch_codec(benchmark):
    report = benchmark.pedantic(
        lambda: bench_batch_codec(PERF_SEED), rounds=1, iterations=1
    )
    write_report(
        "perf_batch_codec",
        report_text(report, "perf: batch SECDED codec"),
    )
    if batch.HAS_NUMPY:
        assert report.metrics["encode_vs_scalar"] >= 5.0
        assert report.metrics["decode_vs_scalar"] >= 5.0
