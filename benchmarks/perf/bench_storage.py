"""Functional backing-store microbenchmark.

Times cold-line materialisation (template caches cleared, so first-touch
cost), differential ``write_line`` commits, and ``diff_mask`` scans.
"""

from repro.perf import bench_storage

from benchmarks.common import write_report
from benchmarks.perf.common import PERF_SEED, report_text


def test_perf_storage(benchmark):
    report = benchmark.pedantic(
        lambda: bench_storage(PERF_SEED), rounds=1, iterations=1
    )
    write_report(
        "perf_storage", report_text(report, "perf: functional backing store")
    )
    for metric, value in report.metrics.items():
        assert value > 0, metric
