"""Synthetic trace generator microbenchmark.

Times the epoch-batched record stream (the exact path the simulator's
cores consume) on the canneal profile; tracked in BENCH_perf.json.
"""

from repro.perf import bench_trace_gen

from benchmarks.common import write_report
from benchmarks.perf.common import PERF_SEED, report_text


def test_perf_trace_gen(benchmark):
    report = benchmark.pedantic(
        lambda: bench_trace_gen(PERF_SEED), rounds=1, iterations=1
    )
    write_report(
        "perf_trace_gen", report_text(report, "perf: synthetic trace stream")
    )
    assert report.metrics["record_us"] > 0
