"""Shared bits for the perf benchmark wrappers."""

from __future__ import annotations

from repro.analysis import format_table
from repro.perf import BenchReport

#: Suite-wide seed; matches the committed BENCH_perf.json.
PERF_SEED = 7


def report_text(report: BenchReport, title: str) -> str:
    """One benchmark's metrics as the standard results table."""
    rows = [
        [metric, f"{value:,.3f}"]
        for metric, value in sorted(report.metrics.items())
    ]
    config = ", ".join(f"{k}={v}" for k, v in sorted(report.config.items()))
    return format_table(
        ["metric", "value"], rows, title=f"{title} ({config})"
    )
