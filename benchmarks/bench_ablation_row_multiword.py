"""Ablation — RoW for writes with more than one essential word (§IV-B4).

The paper restricts RoW to single-essential-word writes ("to keep the
write latency at a reasonable bound and reduce the complexity of the
scheduler") but sketches the extension: break a multi-word write into
serial one-word partial writes, each overlappable.  This simulator
supports the knob directly (``row_max_essential_words``); the ablation
measures what the paper's restriction costs or saves.
"""

from repro.analysis import format_table, percent
from repro.core.systems import make_system

from benchmarks.common import run_pairs, write_report

WORD_LIMITS = (1, 2, 3)
WORKLOADS = ("canneal", "MP1")
_RESULTS = {}
_PROFILES = []


def _run() -> dict:
    if _RESULTS:
        return _RESULTS
    pairs = []
    for workload in WORKLOADS:
        pairs.append((workload, make_system("baseline")))
        for limit in WORD_LIMITS:
            pairs.append((workload, make_system(
                "rwow-rde", row_max_essential_words=limit
            )))
    results = run_pairs(pairs)
    stride = 1 + len(WORD_LIMITS)
    for i, workload in enumerate(WORKLOADS):
        base = results[stride * i]
        _PROFILES.append(base)
        for j, limit in enumerate(WORD_LIMITS):
            result = results[stride * i + 1 + j]
            _PROFILES.append(result)
            _RESULTS[(workload, limit)] = {
                "gain": result.ipc / base.ipc - 1.0,
                "row_reads": result.memory.row_reads,
                "read_latency": result.mean_read_latency_ns,
            }
    return _RESULTS


def _build_report() -> str:
    results = _run()
    rows = []
    for workload in WORKLOADS:
        for limit in WORD_LIMITS:
            data = results[(workload, limit)]
            rows.append(
                [
                    workload,
                    limit,
                    percent(data["gain"]),
                    data["row_reads"],
                    f"{data['read_latency']:.0f}",
                ]
            )
    return format_table(
        ["workload", "RoW word limit", "IPC gain", "RoW reads", "read lat (ns)"],
        rows,
        title=(
            "Ablation: RoW applied to multi-essential-word writes "
            "(paper §IV-B4 keeps the limit at 1)"
        ),
    )


def test_ablation_row_multiword(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("ablation_row_multiword", report, runs=_PROFILES)

    results = _run()
    for workload in WORKLOADS:
        gains = [results[(workload, limit)]["gain"] for limit in WORD_LIMITS]
        # The system keeps working at every limit, and gains stay within
        # a few percent of the paper's limit-1 choice — the restriction
        # is cheap, which is why the paper adopts it.
        assert all(g > -0.05 for g in gains)
        assert abs(gains[1] - gains[0]) < 0.15
