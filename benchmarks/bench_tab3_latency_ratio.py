"""Table III — sensitivity to the write:read latency ratio.

The paper holds the write at 120 ns and shrinks the read latency so the
ratio sweeps 2x..8x.  Shape: RWoW-NR's gain grows steeply with the ratio
(11.3% -> 24.7%) because longer relative writes leave more room to
overlap; RWoW-RDE starts higher (16.6%) and grows more gently (24.3%).
"""

from repro.analysis import format_table, percent
from repro.core.systems import make_system
from repro.memory.timing import DEFAULT_TIMING

from benchmarks.common import run_pairs, write_report

RATIOS = (2.0, 4.0, 6.0, 8.0)
WORKLOADS = ("canneal", "MP1", "MP4")
SYSTEMS = ("rwow-nr", "rwow-rde")

_RESULTS = {}
_PROFILES = []


def _run() -> dict:
    if _RESULTS:
        return _RESULTS
    cells = [
        (ratio, system_name, workload)
        for ratio in RATIOS
        for system_name in ("baseline",) + SYSTEMS
        for workload in WORKLOADS
    ]
    pairs = [
        (
            workload,
            make_system(
                system_name,
                timing=DEFAULT_TIMING.with_write_to_read_ratio(ratio),
            ),
        )
        for ratio, system_name, workload in cells
    ]
    for cell, result in zip(cells, run_pairs(pairs)):
        _RESULTS[cell] = result.ipc
        _PROFILES.append(result)
    return _RESULTS


def _gain(results, ratio, system_name):
    gains = []
    for workload in WORKLOADS:
        base = results[(ratio, "baseline", workload)]
        gains.append(results[(ratio, system_name, workload)] / base - 1.0)
    return sum(gains) / len(gains)


def _build_report() -> str:
    results = _run()
    rows = []
    for system_name in SYSTEMS:
        rows.append(
            [system_name]
            + [percent(_gain(results, ratio, system_name)) for ratio in RATIOS]
        )
    return format_table(
        ["system"] + [f"{int(r)}x" for r in RATIOS],
        rows,
        title=(
            "Table III: IPC gain vs write:read latency ratio "
            "(paper: rwow-nr 11.3->24.7%, rwow-rde 16.6->24.3%)"
        ),
    )


def test_tab3_latency_ratio(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("tab3_latency_ratio", report, runs=_PROFILES)

    results = _run()
    nr_gains = [_gain(results, ratio, "rwow-nr") for ratio in RATIOS]
    rde_gains = [_gain(results, ratio, "rwow-rde") for ratio in RATIOS]
    # Gains grow with the ratio for the no-rotation system (the paper's
    # steep trend), and the full system keeps a positive gain throughout.
    assert nr_gains[-1] > nr_gains[0]
    assert all(g > 0 for g in rde_gains)
    # At the paper's default 2x, full rotation beats no rotation.
    assert rde_gains[0] > nr_gains[0]
