"""Figure 1 — how asymmetric writes delay reads in the baseline.

For the twelve single SPEC programs, runs the baseline PCM system with
asymmetric timing (write = 2x read) and with symmetric timing (write ==
read), then reports (a) the fraction of reads whose service was delayed
by a write and (b) the effective read latency normalised to the symmetric
system.  Paper shape: 11.5-38.1% of reads delayed; latency inflation
1.2-1.8x.
"""

from repro.analysis import format_table
from repro.core.systems import make_system
from repro.memory.timing import DEFAULT_TIMING
from repro.trace.workloads import SPEC_SINGLES

from benchmarks.common import run_pairs, write_report

_RESULTS = {}
_PROFILES = []


def _run() -> dict:
    if _RESULTS:
        return _RESULTS
    asym = make_system("baseline")
    sym = make_system("baseline", timing=DEFAULT_TIMING.symmetric())
    pairs = [
        (workload, system)
        for workload in SPEC_SINGLES
        for system in (asym, sym)
    ]
    results = run_pairs(pairs)
    for workload, a, s in zip(SPEC_SINGLES, results[0::2], results[1::2]):
        _PROFILES.extend([a, s])
        inflation = (
            a.mean_read_latency_ns / s.mean_read_latency_ns
            if s.mean_read_latency_ns
            else 1.0
        )
        _RESULTS[workload.name] = (a.memory.delayed_read_fraction, inflation)
    return _RESULTS


def _build_report() -> str:
    results = _run()
    rows = [
        [name, f"{delayed:.1%}", f"{inflation:.2f}x"]
        for name, (delayed, inflation) in results.items()
    ]
    delayed_avg = sum(d for d, _ in results.values()) / len(results)
    inflation_avg = sum(i for _, i in results.values()) / len(results)
    rows.append(["Average", f"{delayed_avg:.1%}", f"{inflation_avg:.2f}x"])
    return format_table(
        ["workload", "reads delayed by write", "latency vs symmetric"],
        rows,
        title=(
            "Figure 1: write impact on reads, baseline PCM "
            "(paper: 11.5-38.1% delayed, 1.2-1.8x inflation)"
        ),
    )


def test_fig01_write_impact(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("fig01_write_impact", report, runs=_PROFILES)

    results = _run()
    delayed = [d for d, _ in results.values()]
    inflation = [i for _, i in results.values()]
    # Writes must measurably delay reads, with per-workload spread.
    assert max(delayed) > 0.10
    assert min(delayed) >= 0.0
    # Asymmetric writes inflate effective read latency on average.
    assert sum(inflation) / len(inflation) > 1.05
