"""Figure 5 — RoW and WoW scheduling timelines (micro-scenarios).

Drives the two example scenarios of Figure 5 through a PCMap channel and
checks the qualitative schedule: (b) reads overlap a one-word write and
finish far earlier than the serialised baseline; (d) chip-disjoint writes
consolidate into one window instead of serialising.

These are hand-built micro-scenarios driven straight into a controller
(not workload x system simulations), so they bypass the sweep runner and
its result cache by design.
"""

from repro.core.systems import make_system
from repro.memory.memsys import make_controller
from repro.memory.request import ServiceClass, make_read, make_write
from repro.memory.timing import DEFAULT_TIMING
from repro.sim.engine import Engine

from benchmarks.common import write_report


def _stride(config):
    return 64 * config.geometry.n_channels


def _row_scenario():
    """Write A (word 3) + reads B, C served by reconstruction."""
    engine = Engine()
    config = make_system("row-nr")
    controller = make_controller(engine, config, channel_id=0)
    stride = _stride(config)
    for i in range(27):  # push the queue over the drain watermark
        controller.submit(make_write(100 + i, (50 + i) * stride, 0b1000))
    write_a = make_write(1, 10 * stride, 0b1000)
    controller.submit(write_a)
    read_b = make_read(2, 20 * stride)
    read_c = make_read(3, 21 * stride)
    controller.submit(read_b)
    controller.submit(read_c)
    engine.run(max_events=200_000)
    return controller, write_a, read_b, read_c


def _baseline_scenario():
    """The same requests on the baseline: reads wait out the drain."""
    engine = Engine()
    config = make_system("baseline")
    controller = make_controller(engine, config, channel_id=0)
    stride = _stride(config)
    for i in range(27):
        controller.submit(make_write(100 + i, (50 + i) * stride, 0b1000))
    controller.submit(make_write(1, 10 * stride, 0b1000))
    read_b = make_read(2, 20 * stride)
    read_c = make_read(3, 21 * stride)
    controller.submit(read_b)
    controller.submit(read_c)
    engine.run(max_events=200_000)
    return read_b, read_c


def _wow_scenario():
    """Writes A{2,5}, B{3,6}, C{4}: disjoint chips, one window."""
    engine = Engine()
    config = make_system("wow-nr")
    controller = make_controller(engine, config, channel_id=0)
    stride = _stride(config)
    writes = {
        "A": make_write(1, 10 * stride, (1 << 2) | (1 << 5)),
        "B": make_write(2, 11 * stride, (1 << 3) | (1 << 6)),
        "C": make_write(3, 12 * stride, 1 << 4),
    }
    for i in range(25):
        controller.submit(make_write(200 + i, (100 + i) * stride, 0b1))
    for write in writes.values():
        controller.submit(write)
    engine.run(max_events=200_000)
    return controller, writes


def test_fig05_row_timeline(benchmark):
    controller, write_a, read_b, read_c = benchmark.pedantic(
        _row_scenario, rounds=1, iterations=1
    )
    base_b, base_c = _baseline_scenario()

    lines = [
        "Figure 5(a)-(b): RoW vs baseline for write A + reads B, C",
        f"  baseline: read B latency {base_b.latency / 10:.0f} ns, "
        f"read C latency {base_c.latency / 10:.0f} ns",
        f"  RoW     : read B latency {read_b.latency / 10:.0f} ns "
        f"({read_b.service_class.value}), read C latency "
        f"{read_c.latency / 10:.0f} ns ({read_c.service_class.value})",
        f"  RoW reads served in parallel with writes: "
        f"{controller.stats.row_reads}",
        f"  engine events dispatched: {controller.engine.events_dispatched}",
    ]
    write_report("fig05_row_timeline", "\n".join(lines))

    assert controller.stats.row_reads >= 2
    assert read_b.service_class is ServiceClass.ROW_OVERLAP
    # The overlapped reads complete far faster than behind the baseline
    # drain (Figure 5(b) vs 5(a)).
    assert read_b.latency < base_b.latency / 2
    assert read_c.latency < base_c.latency / 2


def test_fig05_wow_timeline(benchmark):
    controller, writes = benchmark.pedantic(
        _wow_scenario, rounds=1, iterations=1
    )
    spans = {
        label: (w.start_service, w.completion) for label, w in writes.items()
    }
    lines = ["Figure 5(c)-(d): WoW consolidation of writes A{2,5}, B{3,6}, C{4}"]
    for label, (start, end) in spans.items():
        lines.append(f"  write {label}: service [{start / 10:.0f}, {end / 10:.0f}] ns")
    lines.append(
        f"  groups formed: {controller.stats.wow_groups}, "
        f"members: {controller.stats.wow_member_writes}"
    )
    lines.append(
        f"  engine events dispatched: {controller.engine.events_dispatched}"
    )
    write_report("fig05_wow_timeline", "\n".join(lines))

    assert controller.stats.wow_groups >= 1
    # Consolidation starts all three data phases together (Figure 5(d));
    # the ECC/PCC updates then serialise on the fixed code chips, which
    # is exactly the NR limitation the paper calls out.
    assert all(
        w.service_class is ServiceClass.WOW_MEMBER for w in writes.values()
    )
    starts = [s for s, _e in spans.values()]
    assert max(starts) - min(starts) < DEFAULT_TIMING.array_write_ticks
    overlap = any(
        a[0] < b[1] and b[0] < a[1]
        for la, a in spans.items()
        for lb, b in spans.items()
        if la != lb
    )
    assert overlap
