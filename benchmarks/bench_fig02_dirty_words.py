"""Figure 2 — dirty-word distribution of cache-line write-backs.

Generates each single-SPEC workload's write-back stream and histograms
how many 8-byte words each 64-byte write-back actually modifies.  Paper
shape: 14% (omnetpp) to 52% (cactusADM) of write-backs touch exactly one
word; 77-99% touch at most half the line; the average line needs ~2.4
word writes — the idleness PCMap exploits.

This benchmark samples trace generators directly (no simulation runs),
so it has no (workload, system) jobs for the sweep runner; it is memoised
in-process only.
"""

from repro.analysis import format_table
from repro.trace.record import AccessKind
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.trace.workloads import SPEC_SINGLES

from benchmarks.common import write_report

_SAMPLES = 30_000
_HISTOGRAMS = {}


def _run() -> dict:
    if _HISTOGRAMS:
        return _HISTOGRAMS
    for workload in SPEC_SINGLES:
        generator = SyntheticTraceGenerator(workload, seed=17)
        histogram = [0] * 9
        write_backs = 0
        for record in generator.records():
            if record.kind is AccessKind.WRITE_BACK:
                histogram[bin(record.dirty_mask).count("1")] += 1
                write_backs += 1
                if write_backs >= _SAMPLES:
                    break
        total = sum(histogram)
        _HISTOGRAMS[workload.name] = [count / total for count in histogram]
    return _HISTOGRAMS


def _build_report() -> str:
    histograms = _run()
    rows = []
    for name, fractions in histograms.items():
        mean_dirty = sum(i * f for i, f in enumerate(fractions))
        rows.append(
            [name]
            + [f"{f:.1%}" for f in fractions]
            + [f"{mean_dirty:.2f}"]
        )
    return format_table(
        ["workload"] + [f"{i}w" for i in range(9)] + ["mean"],
        rows,
        title=(
            "Figure 2: fraction of write-backs updating exactly i words "
            "(paper: 1-word between 14% and 52%; <=4 words 77-99%)"
        ),
    )


def test_fig02_dirty_words(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("fig02_dirty_words", report)

    histograms = _run()
    one_word = {name: h[1] for name, h in histograms.items()}
    # The paper's named anchors.
    assert min(one_word, key=one_word.get) == "omnetpp"
    assert max(one_word, key=one_word.get) == "cactusADM"
    assert 0.10 <= one_word["omnetpp"] <= 0.20
    assert 0.45 <= one_word["cactusADM"] <= 0.58
    for name, h in histograms.items():
        assert 0.72 <= sum(h[:5]) <= 1.0, name
    means = [sum(i * f for i, f in enumerate(h)) for h in histograms.values()]
    assert 1.8 <= sum(means) / len(means) <= 3.0
