"""Front-end filter study — replacement policies behind the DRAM tier.

Not a paper figure: the paper's traces are post-DRAM-cache, so its
controllers never see the tier.  This benchmark turns the simulated
front end on and asks how the *filter* reshapes what reaches PCM — the
tier absorbs read reuse (shifting effective read latency) and converts
write-backs into merged-mask evictions (shifting IRLP's raw material) —
and ranks the LRU/CLOCK/MAC replacement policies by hit rate and by the
read latency and IRLP observed behind them.

The tier is deliberately run far below Table I's 256 MB (which would
filter a 4 000-request run to nothing): a capacity-starved cache is what
makes the policies' reuse decisions visible.

Acceptance pins: on the same seed-7 workload the three policies produce
*differing*, *deterministic* hit rates, and the saved results embed the
``frontend`` section of the results schema.
"""

import json
import os

from repro.analysis import format_table
from repro.core.systems import make_front_end, make_system
from repro.sim.results_io import load_results, save_results
from repro.sim.simulator import SimulationParams, simulate

from benchmarks.common import _RESULTS_DIR, write_report

#: One memory-intense seed-7 workload; rwow-rde (full PCMap) behind it.
WORKLOAD = "canneal"
SYSTEM = "rwow-rde"
SEED = 7
REQUESTS = 4_000
POLICIES = ["lru", "clock", "mac"]

#: Capacity-starved tier (256 sets): evictions happen, policies matter.
TIER_SIZE_BYTES = 16 * 1024


def _tier_params(policy: str) -> SimulationParams:
    return SimulationParams(
        target_requests=REQUESTS,
        seed=SEED,
        front_end=make_front_end(
            "dram", policy, size_bytes=TIER_SIZE_BYTES
        ),
    )


def _run_all():
    """Direct path + one run per policy (seed and scale held fixed)."""
    system = make_system(SYSTEM)
    direct = simulate(
        system, WORKLOAD,
        SimulationParams(target_requests=REQUESTS, seed=SEED),
    )
    tiered = {
        policy: simulate(system, WORKLOAD, _tier_params(policy))
        for policy in POLICIES
    }
    return direct, tiered


def _build_report(direct, tiered) -> str:
    rows = [[
        "none (direct)", "-",
        f"{direct.mean_read_latency_ns:.0f}",
        f"{direct.irlp_average:.2f}",
        str(direct.memory.writes_completed), "-", "-",
    ]]
    ranked = sorted(
        tiered.items(),
        key=lambda item: item[1].frontend["hit_rate"],
        reverse=True,
    )
    for policy, result in ranked:
        f = result.frontend
        rows.append([
            f"dram/{policy}",
            f"{f['hit_rate']:.4f}",
            f"{result.mean_read_latency_ns:.0f}",
            f"{result.irlp_average:.2f}",
            str(result.memory.writes_completed),
            str(f["write_backs"]),
            str(f["cache"]["clean_evictions"]),
        ])
    return format_table(
        ["front end", "hit rate", "read lat (ns)", "IRLP",
         "PCM writes", "tier WBs", "clean evs"],
        rows,
        title=(
            f"Front-end filter: {WORKLOAD} on {SYSTEM} "
            f"(seed {SEED}, {REQUESTS} requests, "
            f"{TIER_SIZE_BYTES // 1024} KB tier) — ranked by hit rate"
        ),
    )


def test_frontend_filter(benchmark):
    direct, tiered = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    report = _build_report(direct, tiered)
    write_report(
        "frontend_filter", report,
        runs=[direct] + list(tiered.values()),
    )

    # Differing hit rates across policies on the same seed-7 workload.
    hit_rates = {p: r.frontend["hit_rate"] for p, r in tiered.items()}
    assert len(set(hit_rates.values())) >= 2, hit_rates

    # Deterministic: a repeat of one policy reproduces its run exactly.
    repeat = simulate(make_system(SYSTEM), WORKLOAD, _tier_params("mac"))
    assert repeat.sim_ticks == tiered["mac"].sim_ticks
    assert repeat.frontend == tiered["mac"].frontend

    # The tier is a filter: PCM sees only fills and merged write-backs,
    # never the cores' raw request stream.
    for result in tiered.values():
        f = result.frontend
        assert result.memory.reads_completed <= f["fills"]
        assert f["write_backs"] <= f["writes"] + f["fills"]

    # Persist with the frontend section embedded in the results schema.
    path = os.path.join(_RESULTS_DIR, "frontend_filter.json")
    save_results(path, [direct] + [tiered[p] for p in POLICIES])
    with open(path) as handle:
        payload = json.load(handle)
    assert "frontend" not in payload[0]          # direct run: no section
    for entry, policy in zip(payload[1:], POLICIES):
        assert entry["frontend"]["replacement"] == policy
        assert "hit_rate" in entry["frontend"]
    restored = load_results(path)
    assert restored[1].frontend == tiered["lru"].frontend
