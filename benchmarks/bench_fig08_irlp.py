"""Figure 8 — intra-rank-level parallelism (IRLP) per system.

Paper shape: baseline averages ~2.4 (MT below 2); WoW + rotation raise it
to ~4.5 on average and up to ~7.4; rotating ECC/PCC (RWoW-RDE) beats
rotating data alone, which beats no rotation.
"""

from repro.analysis import FigureSeries, figure_report
from repro.core.systems import SYSTEM_NAMES

from benchmarks.common import (
    FIGURE_WORKLOADS,
    figure_sweep,
    mt_mp_average_rows,
    write_report,
)


def _build_report() -> str:
    comparisons = figure_sweep()
    series = []
    for name in SYSTEM_NAMES:
        values = {c.workload_name: c.irlp(name) for c in comparisons}
        series.append(FigureSeries(name, mt_mp_average_rows(values)))
    workloads = FIGURE_WORKLOADS + ["Average(MT)", "Average(MP)"]
    return figure_report(
        "Figure 8: IRLP during writes "
        "(paper: baseline ~2.4, RWoW-RDE ~4.5, max 7.4)",
        workloads,
        series,
    )


def test_fig08_irlp(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("fig08_irlp", report, runs=figure_sweep())

    comparisons = figure_sweep()
    baseline = [c.irlp("baseline") for c in comparisons]
    rde = [c.irlp("rwow-rde") for c in comparisons]
    nr = [c.irlp("rwow-nr") for c in comparisons]
    # Shape assertions from the paper.
    assert 1.5 <= sum(baseline) / len(baseline) <= 3.2
    assert sum(rde) / len(rde) > sum(baseline) / len(baseline) + 0.5
    assert sum(rde) / len(rde) >= sum(nr) / len(nr) - 0.15
    assert max(c.results["rwow-rde"].irlp_max for c in comparisons) <= 8.0
