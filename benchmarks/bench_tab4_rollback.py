"""Table IV — cost of CPU rollbacks for RoW's deferred verification.

For the four workloads with the highest rollback rates (canneal 5.8%,
facesim 4.1%, MP6 3.4%, ferret 2.2%), compares PCMap's IPC gain under the
paper's two assumptions: the "always faulty" system (every early-consumed
RoW read forces a rollback at the measured rate) and the "never faulty"
system (verification always passes).  Shape: RoW stays profitable even at
5.8% rollbacks, and the rollback cost (the gap between the two columns)
is at most a few percent.
"""

from repro.analysis import format_table, percent
from repro.core.systems import make_system
from repro.trace.workloads import TABLE4_NAMES, get_workload

from benchmarks.common import run_pairs, write_report

_RESULTS = {}
_PROFILES = []


def _run() -> dict:
    if _RESULTS:
        return _RESULTS
    pairs = []
    for name in TABLE4_NAMES:
        workload = get_workload(name)
        pairs.append((workload, make_system("baseline")))
        # Table IV is titled "IPC of RoW normalized to the baseline":
        # the RoW-only system maximises deferred verifications, which is
        # where rollbacks can occur.
        pairs.append((workload, make_system(
            "row-nr", row_rollback_rate=workload.rollback_rate
        )))
        # row_rollback_rate=0 would auto-wire the workload rate; pass a
        # vanishing rate to model the "never faulty" system.
        pairs.append((workload, make_system(
            "row-nr", row_rollback_rate=1e-12
        )))
    results = run_pairs(pairs)
    for i, name in enumerate(TABLE4_NAMES):
        workload = get_workload(name)
        base, faulty, clean = results[3 * i:3 * i + 3]
        _PROFILES.extend([base, faulty, clean])
        _RESULTS[name] = {
            "rate": workload.rollback_rate,
            "faulty_gain": faulty.ipc / base.ipc - 1.0,
            "clean_gain": clean.ipc / base.ipc - 1.0,
            "rollbacks": faulty.memory.rollbacks,
            "row_reads": faulty.memory.row_reads,
        }
    return _RESULTS


def _build_report() -> str:
    results = _run()
    rows = []
    for name, data in results.items():
        rows.append(
            [
                name,
                f"{data['rate']:.1%}",
                percent(data["faulty_gain"]),
                percent(data["clean_gain"]),
                percent(data["clean_gain"] - data["faulty_gain"]),
                data["rollbacks"],
            ]
        )
    return format_table(
        [
            "workload", "rollback rate", "IPC gain (faulty)",
            "IPC gain (non-faulty)", "rollback cost", "rollbacks",
        ],
        rows,
        title=(
            "Table IV: RoW rollback cost "
            "(paper: gains stay positive up to 5.8% rollbacks; "
            "cost up to ~4.6%)"
        ),
    )


def test_tab4_rollback(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("tab4_rollback", report, runs=_PROFILES)

    results = _run()
    for name, data in results.items():
        # The paper's headline: RoW never degrades overall performance,
        # even in the always-faulty system.
        assert data["faulty_gain"] > -0.02, name
        # Rollbacks actually happened where RoW reads occurred.
        if data["row_reads"] > 50:
            assert data["rollbacks"] > 0, name
        # The non-faulty system is at least as good (within noise).
        assert data["clean_gain"] >= data["faulty_gain"] - 0.03, name
