"""Ablation — wear balance across chips (paper §IV-C2's lifetime claim).

"By rotating the ECC and PCC chips along with data chips, the updates are
not concentrated to few chips and are better balanced.  Hence ... PCMap is
expected to have better lifetime than the baseline."

Measures the per-chip PCM word-write distribution (coefficient of
variation: 0 = perfectly even wear) for the fixed, data-rotated and fully
rotated layouts under a workload with the skewed dirty-offset profile the
rotation targets.
"""

from repro.analysis import format_table

from benchmarks.common import run_pairs, write_report

SYSTEMS = ("baseline", "rwow-nr", "rwow-rd", "rwow-rde")
_RESULTS = {}
_PROFILES = []


def _run() -> dict:
    if _RESULTS:
        return _RESULTS
    results = run_pairs([("canneal", name) for name in SYSTEMS])
    for system_name, result in zip(SYSTEMS, results):
        _PROFILES.append(result)
        stats = result.memory
        _RESULTS[system_name] = {
            "imbalance": stats.chip_write_imbalance(),
            "per_chip": dict(sorted(stats.chip_word_writes.items())),
        }
    return _RESULTS


def _build_report() -> str:
    results = _run()
    n_chips = max(max(d["per_chip"]) for d in results.values()) + 1
    rows = []
    for system_name, data in results.items():
        rows.append(
            [system_name]
            + [data["per_chip"].get(c, 0) for c in range(n_chips)]
            + [f"{data['imbalance']:.3f}"]
        )
    return format_table(
        ["system"] + [f"c{c}" for c in range(n_chips)] + ["CoV"],
        rows,
        title=(
            "Ablation: per-chip PCM word writes (canneal) — rotation "
            "balances wear (paper §IV-C2)"
        ),
    )


def test_ablation_rotation_wear(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("ablation_rotation_wear", report, runs=_PROFILES)

    results = _run()
    # Fixed layouts hammer the ECC/PCC chips and the low-offset data
    # chips; full rotation must be markedly more even.
    assert results["rwow-rde"]["imbalance"] < results["rwow-nr"]["imbalance"]
    assert results["rwow-rde"]["imbalance"] < results["baseline"]["imbalance"]
    # Data rotation alone helps the data chips but leaves the code-chip
    # hot spot, so full rotation still wins.
    assert results["rwow-rde"]["imbalance"] <= results["rwow-rd"]["imbalance"]
