"""Extension — array energy cost of PCMap's parallelism.

The paper motivates the problem with PCM write power (§III-A2) but does
not quantify PCMap's own energy overhead (extra PCC word updates, the
deferred-verification reads).  This benchmark prices it: per-request
array energy for every system variant under the energy model derived
from the prototype data the paper cites.
"""

from repro.analysis import format_table
from repro.core.systems import SYSTEM_NAMES
from repro.memory.power import DEFAULT_ENERGY_MODEL

from benchmarks.common import run_pairs, write_report

WORKLOAD = "canneal"
_RESULTS = {}
_PROFILES = []


def _run() -> dict:
    if _RESULTS:
        return _RESULTS
    results = run_pairs([(WORKLOAD, name) for name in SYSTEM_NAMES])
    for name, result in zip(SYSTEM_NAMES, results):
        _PROFILES.append(result)
        _RESULTS[name] = {
            "per_request_nj": DEFAULT_ENERGY_MODEL.energy_per_request_nj(
                result.memory
            ),
            "total_uj": DEFAULT_ENERGY_MODEL.run_energy_uj(result.memory),
            "verify_reads": result.memory.verify_count,
            "ipc": result.ipc,
        }
    return _RESULTS


def _build_report() -> str:
    results = _run()
    base = results["baseline"]["per_request_nj"]
    rows = []
    for name, data in results.items():
        overhead = (
            data["per_request_nj"] / base - 1.0 if base else 0.0
        )
        rows.append(
            [
                name,
                f"{data['per_request_nj']:.2f}",
                f"{overhead:+.1%}",
                data["verify_reads"],
                f"{data['ipc']:.3f}",
            ]
        )
    return format_table(
        ["system", "nJ/request", "vs baseline", "verify reads", "IPC"],
        rows,
        title=(
            f"Extension: array energy per request ({WORKLOAD}) — the "
            "price of PCMap's extra PCC updates and verify reads"
        ),
    )


def test_ext_energy(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("ext_energy", report, runs=_PROFILES)

    results = _run()
    base = results["baseline"]["per_request_nj"]
    full = results["rwow-rde"]["per_request_nj"]
    assert base > 0
    # PCMap's energy overhead stays moderate (< 60 % per request) while
    # its IPC gain is delivered — the trade the paper implies is cheap.
    assert full < 1.6 * base
    assert results["rwow-rde"]["ipc"] > results["baseline"]["ipc"]
