"""Mis-verify rate under real injected faults (§IV-B3, Table IV band).

The paper bounds RoW's mis-verify-triggered CPU rollbacks at 5.8% of
RoW reads (canneal, Table IV's worst case).  Where ``bench_tab4`` models
that rate *statistically* (``row_rollback_rate``), this benchmark
*earns* every rollback: seeded fault campaigns inject read disturb,
write failures and wear-induced stuck-at cells at the storage boundary,
and the only rollbacks counted are those the deferred SECDED verify
actually raised against a corrupted PCC reconstruction.

Shape asserted per campaign:

* the measured mis-verify rate stays inside the paper's ≤5.8% band,
* fault pressure produces *some* corrupted-verify rollbacks overall
  (the machinery is exercised, not dormant), and
* every campaign's differential oracle finishes clean — no fault ever
  corrupts memory state outside the ledger's accounting.
"""

from repro.analysis import format_table
from repro.faults import DEFAULT_FAULTS, FaultCampaignSpec, run_campaign

from benchmarks.common import write_report

#: Seeded campaigns over the configurations that actually open RoW
#: windows at this scale: canneal (Table IV's 5.8% worst case) across
#: the paper's RoW-bearing systems and seeds, plus a multi-programmed
#: mix.  The RoW-only systems (no essential-word detection shortening
#: writes) drain longest and reconstruct the most reads — the largest
#: mis-verify sample.
_CAMPAIGNS = [
    FaultCampaignSpec(workload="canneal", system="rwow-rde", seed=seed,
                      target_requests=10_000, fault=DEFAULT_FAULTS)
    for seed in (1, 2, 3)
] + [
    FaultCampaignSpec(workload="canneal", system="rwow-rd", seed=seed,
                      target_requests=10_000, fault=DEFAULT_FAULTS)
    for seed in (1, 2)
] + [
    FaultCampaignSpec(workload="canneal", system="rwow-nr", seed=1,
                      target_requests=10_000, fault=DEFAULT_FAULTS),
    FaultCampaignSpec(workload="MP6", system="rwow-rd", seed=1,
                      target_requests=10_000, fault=DEFAULT_FAULTS),
]

_RESULTS = []


def _run() -> list:
    if _RESULTS:
        return _RESULTS
    for spec in _CAMPAIGNS:
        _RESULTS.append((spec, run_campaign(spec)))
    return _RESULTS


def _build_report() -> str:
    rows = []
    total_rollbacks = 0
    total_row_reads = 0
    for spec, report in _run():
        row = report["row"]
        injected = report["injected"]
        total_rollbacks += row["rollbacks_corrupted"]
        total_row_reads += row["row_reads"]
        rows.append([
            f"{spec.workload}/{spec.system}",
            spec.seed,
            injected["read_disturb_injected"] + injected["write_fail_injected"]
            + injected["stuck_cells_activated"],
            injected["corrected"],
            injected["detected_uncorrectable"],
            row["row_reads"],
            row["rollbacks_corrupted"],
            f"{row['misverify_rate']:.2%}",
            "clean" if report["ok"] else "VIOLATED",
        ])
    pooled = total_rollbacks / total_row_reads if total_row_reads else 0.0
    rows.append([
        "pooled", "-", "-", "-", "-", total_row_reads, total_rollbacks,
        f"{pooled:.2%}", "-",
    ])
    return format_table(
        [
            "campaign", "seed", "injected", "corrected", "uncorrectable",
            "RoW reads", "mis-verify rb", "rate", "oracle",
        ],
        rows,
        title=(
            "Mis-verify rate under injected faults "
            "(paper band: <= 5.8% of RoW reads)"
        ),
    )


def test_misverify(benchmark):
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("misverify", report)

    total_rollbacks = 0
    total_row_reads = 0
    for spec, campaign in _run():
        row = campaign["row"]
        label = f"{spec.workload}/{spec.system}/seed{spec.seed}"
        # Inside the paper's worst-case band, per campaign.
        assert row["misverify_rate"] <= 0.058, label
        # Differential oracle clean: every divergence ledger-accounted.
        assert campaign["ok"], label
        total_rollbacks += row["rollbacks_corrupted"]
        total_row_reads += row["row_reads"]
    # The fault chain is actually exercised: corrupted reconstructions
    # were caught by the deferred verify somewhere in the suite.
    assert total_row_reads > 300
    assert total_rollbacks > 0
